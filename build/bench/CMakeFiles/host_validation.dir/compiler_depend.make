# Empty compiler generated dependencies file for host_validation.
# This may be replaced when dependencies are built.
