file(REMOVE_RECURSE
  "CMakeFiles/host_validation.dir/host_validation.cc.o"
  "CMakeFiles/host_validation.dir/host_validation.cc.o.d"
  "host_validation"
  "host_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
