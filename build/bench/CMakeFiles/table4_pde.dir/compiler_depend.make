# Empty compiler generated dependencies file for table4_pde.
# This may be replaced when dependencies are built.
