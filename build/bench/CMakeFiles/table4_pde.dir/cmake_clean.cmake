file(REMOVE_RECURSE
  "CMakeFiles/table4_pde.dir/table4_pde.cc.o"
  "CMakeFiles/table4_pde.dir/table4_pde.cc.o.d"
  "table4_pde"
  "table4_pde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_pde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
