# Empty compiler generated dependencies file for extension_spmv.
# This may be replaced when dependencies are built.
