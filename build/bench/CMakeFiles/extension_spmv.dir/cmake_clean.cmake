file(REMOVE_RECURSE
  "CMakeFiles/extension_spmv.dir/extension_spmv.cc.o"
  "CMakeFiles/extension_spmv.dir/extension_spmv.cc.o.d"
  "extension_spmv"
  "extension_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
