# Empty dependencies file for ablation_layout.
# This may be replaced when dependencies are built.
