# Empty compiler generated dependencies file for ablation_physical.
# This may be replaced when dependencies are built.
