file(REMOVE_RECURSE
  "CMakeFiles/ablation_physical.dir/ablation_physical.cc.o"
  "CMakeFiles/ablation_physical.dir/ablation_physical.cc.o.d"
  "ablation_physical"
  "ablation_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
