# Empty compiler generated dependencies file for ablation_package.
# This may be replaced when dependencies are built.
