file(REMOVE_RECURSE
  "CMakeFiles/ablation_package.dir/ablation_package.cc.o"
  "CMakeFiles/ablation_package.dir/ablation_package.cc.o.d"
  "ablation_package"
  "ablation_package.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_package.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
