# Empty compiler generated dependencies file for ablation_tours.
# This may be replaced when dependencies are built.
