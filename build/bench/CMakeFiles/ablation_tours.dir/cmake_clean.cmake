file(REMOVE_RECURSE
  "CMakeFiles/ablation_tours.dir/ablation_tours.cc.o"
  "CMakeFiles/ablation_tours.dir/ablation_tours.cc.o.d"
  "ablation_tours"
  "ablation_tours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
