file(REMOVE_RECURSE
  "CMakeFiles/ablation_smp.dir/ablation_smp.cc.o"
  "CMakeFiles/ablation_smp.dir/ablation_smp.cc.o.d"
  "ablation_smp"
  "ablation_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
