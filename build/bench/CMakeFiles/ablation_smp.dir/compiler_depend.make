# Empty compiler generated dependencies file for ablation_smp.
# This may be replaced when dependencies are built.
