file(REMOVE_RECURSE
  "CMakeFiles/microbench_gbench.dir/microbench_gbench.cc.o"
  "CMakeFiles/microbench_gbench.dir/microbench_gbench.cc.o.d"
  "microbench_gbench"
  "microbench_gbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
