# Empty dependencies file for microbench_gbench.
# This may be replaced when dependencies are built.
