file(REMOVE_RECURSE
  "CMakeFiles/ablation_groupsize.dir/ablation_groupsize.cc.o"
  "CMakeFiles/ablation_groupsize.dir/ablation_groupsize.cc.o.d"
  "ablation_groupsize"
  "ablation_groupsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_groupsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
