# Empty dependencies file for ablation_groupsize.
# This may be replaced when dependencies are built.
