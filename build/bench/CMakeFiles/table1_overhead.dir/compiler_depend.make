# Empty compiler generated dependencies file for table1_overhead.
# This may be replaced when dependencies are built.
