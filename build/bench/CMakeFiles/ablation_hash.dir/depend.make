# Empty dependencies file for ablation_hash.
# This may be replaced when dependencies are built.
