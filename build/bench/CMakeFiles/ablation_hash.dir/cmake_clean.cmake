file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash.dir/ablation_hash.cc.o"
  "CMakeFiles/ablation_hash.dir/ablation_hash.cc.o.d"
  "ablation_hash"
  "ablation_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
