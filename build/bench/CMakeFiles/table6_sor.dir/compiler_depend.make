# Empty compiler generated dependencies file for table6_sor.
# This may be replaced when dependencies are built.
