file(REMOVE_RECURSE
  "CMakeFiles/table6_sor.dir/table6_sor.cc.o"
  "CMakeFiles/table6_sor.dir/table6_sor.cc.o.d"
  "table6_sor"
  "table6_sor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
