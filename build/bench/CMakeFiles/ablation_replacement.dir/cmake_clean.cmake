file(REMOVE_RECURSE
  "CMakeFiles/ablation_replacement.dir/ablation_replacement.cc.o"
  "CMakeFiles/ablation_replacement.dir/ablation_replacement.cc.o.d"
  "ablation_replacement"
  "ablation_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
