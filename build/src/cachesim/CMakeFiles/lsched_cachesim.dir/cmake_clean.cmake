file(REMOVE_RECURSE
  "CMakeFiles/lsched_cachesim.dir/cache.cc.o"
  "CMakeFiles/lsched_cachesim.dir/cache.cc.o.d"
  "CMakeFiles/lsched_cachesim.dir/hierarchy.cc.o"
  "CMakeFiles/lsched_cachesim.dir/hierarchy.cc.o.d"
  "liblsched_cachesim.a"
  "liblsched_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
