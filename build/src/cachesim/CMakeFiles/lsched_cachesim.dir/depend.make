# Empty dependencies file for lsched_cachesim.
# This may be replaced when dependencies are built.
