file(REMOVE_RECURSE
  "liblsched_cachesim.a"
)
