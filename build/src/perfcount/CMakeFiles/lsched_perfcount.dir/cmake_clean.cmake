file(REMOVE_RECURSE
  "CMakeFiles/lsched_perfcount.dir/perf_counters.cc.o"
  "CMakeFiles/lsched_perfcount.dir/perf_counters.cc.o.d"
  "liblsched_perfcount.a"
  "liblsched_perfcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_perfcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
