file(REMOVE_RECURSE
  "liblsched_perfcount.a"
)
