# Empty compiler generated dependencies file for lsched_perfcount.
# This may be replaced when dependencies are built.
