file(REMOVE_RECURSE
  "CMakeFiles/lsched_trace.dir/din.cc.o"
  "CMakeFiles/lsched_trace.dir/din.cc.o.d"
  "CMakeFiles/lsched_trace.dir/trace_file.cc.o"
  "CMakeFiles/lsched_trace.dir/trace_file.cc.o.d"
  "liblsched_trace.a"
  "liblsched_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
