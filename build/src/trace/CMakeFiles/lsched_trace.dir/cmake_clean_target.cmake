file(REMOVE_RECURSE
  "liblsched_trace.a"
)
