# Empty dependencies file for lsched_trace.
# This may be replaced when dependencies are built.
