
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/din.cc" "src/trace/CMakeFiles/lsched_trace.dir/din.cc.o" "gcc" "src/trace/CMakeFiles/lsched_trace.dir/din.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/lsched_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/lsched_trace.dir/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsched_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/lsched_cachesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
