# Empty compiler generated dependencies file for lsched_fibers.
# This may be replaced when dependencies are built.
