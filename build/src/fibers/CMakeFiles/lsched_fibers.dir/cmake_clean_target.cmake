file(REMOVE_RECURSE
  "liblsched_fibers.a"
)
