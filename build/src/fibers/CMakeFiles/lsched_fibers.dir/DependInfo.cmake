
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fibers/fiber.cc" "src/fibers/CMakeFiles/lsched_fibers.dir/fiber.cc.o" "gcc" "src/fibers/CMakeFiles/lsched_fibers.dir/fiber.cc.o.d"
  "/root/repo/src/fibers/general_scheduler.cc" "src/fibers/CMakeFiles/lsched_fibers.dir/general_scheduler.cc.o" "gcc" "src/fibers/CMakeFiles/lsched_fibers.dir/general_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsched_support.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/lsched_threads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
