file(REMOVE_RECURSE
  "CMakeFiles/lsched_fibers.dir/fiber.cc.o"
  "CMakeFiles/lsched_fibers.dir/fiber.cc.o.d"
  "CMakeFiles/lsched_fibers.dir/general_scheduler.cc.o"
  "CMakeFiles/lsched_fibers.dir/general_scheduler.cc.o.d"
  "liblsched_fibers.a"
  "liblsched_fibers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_fibers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
