file(REMOVE_RECURSE
  "liblsched_threads.a"
)
