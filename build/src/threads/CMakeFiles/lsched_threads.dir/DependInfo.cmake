
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threads/c_api.cc" "src/threads/CMakeFiles/lsched_threads.dir/c_api.cc.o" "gcc" "src/threads/CMakeFiles/lsched_threads.dir/c_api.cc.o.d"
  "/root/repo/src/threads/parallel_scheduler.cc" "src/threads/CMakeFiles/lsched_threads.dir/parallel_scheduler.cc.o" "gcc" "src/threads/CMakeFiles/lsched_threads.dir/parallel_scheduler.cc.o.d"
  "/root/repo/src/threads/scheduler.cc" "src/threads/CMakeFiles/lsched_threads.dir/scheduler.cc.o" "gcc" "src/threads/CMakeFiles/lsched_threads.dir/scheduler.cc.o.d"
  "/root/repo/src/threads/tour.cc" "src/threads/CMakeFiles/lsched_threads.dir/tour.cc.o" "gcc" "src/threads/CMakeFiles/lsched_threads.dir/tour.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsched_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
