file(REMOVE_RECURSE
  "CMakeFiles/lsched_threads.dir/c_api.cc.o"
  "CMakeFiles/lsched_threads.dir/c_api.cc.o.d"
  "CMakeFiles/lsched_threads.dir/parallel_scheduler.cc.o"
  "CMakeFiles/lsched_threads.dir/parallel_scheduler.cc.o.d"
  "CMakeFiles/lsched_threads.dir/scheduler.cc.o"
  "CMakeFiles/lsched_threads.dir/scheduler.cc.o.d"
  "CMakeFiles/lsched_threads.dir/tour.cc.o"
  "CMakeFiles/lsched_threads.dir/tour.cc.o.d"
  "liblsched_threads.a"
  "liblsched_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
