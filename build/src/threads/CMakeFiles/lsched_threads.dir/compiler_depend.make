# Empty compiler generated dependencies file for lsched_threads.
# This may be replaced when dependencies are built.
