
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/machine_config.cc" "src/machine/CMakeFiles/lsched_machine.dir/machine_config.cc.o" "gcc" "src/machine/CMakeFiles/lsched_machine.dir/machine_config.cc.o.d"
  "/root/repo/src/machine/timing_model.cc" "src/machine/CMakeFiles/lsched_machine.dir/timing_model.cc.o" "gcc" "src/machine/CMakeFiles/lsched_machine.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lsched_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/lsched_cachesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
