file(REMOVE_RECURSE
  "liblsched_machine.a"
)
