# Empty compiler generated dependencies file for lsched_machine.
# This may be replaced when dependencies are built.
