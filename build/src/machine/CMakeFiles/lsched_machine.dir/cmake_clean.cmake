file(REMOVE_RECURSE
  "CMakeFiles/lsched_machine.dir/machine_config.cc.o"
  "CMakeFiles/lsched_machine.dir/machine_config.cc.o.d"
  "CMakeFiles/lsched_machine.dir/timing_model.cc.o"
  "CMakeFiles/lsched_machine.dir/timing_model.cc.o.d"
  "liblsched_machine.a"
  "liblsched_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
