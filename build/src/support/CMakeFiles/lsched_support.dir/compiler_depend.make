# Empty compiler generated dependencies file for lsched_support.
# This may be replaced when dependencies are built.
