
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cc" "src/support/CMakeFiles/lsched_support.dir/cli.cc.o" "gcc" "src/support/CMakeFiles/lsched_support.dir/cli.cc.o.d"
  "/root/repo/src/support/panic.cc" "src/support/CMakeFiles/lsched_support.dir/panic.cc.o" "gcc" "src/support/CMakeFiles/lsched_support.dir/panic.cc.o.d"
  "/root/repo/src/support/table.cc" "src/support/CMakeFiles/lsched_support.dir/table.cc.o" "gcc" "src/support/CMakeFiles/lsched_support.dir/table.cc.o.d"
  "/root/repo/src/support/timer.cc" "src/support/CMakeFiles/lsched_support.dir/timer.cc.o" "gcc" "src/support/CMakeFiles/lsched_support.dir/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
