file(REMOVE_RECURSE
  "CMakeFiles/lsched_support.dir/cli.cc.o"
  "CMakeFiles/lsched_support.dir/cli.cc.o.d"
  "CMakeFiles/lsched_support.dir/panic.cc.o"
  "CMakeFiles/lsched_support.dir/panic.cc.o.d"
  "CMakeFiles/lsched_support.dir/table.cc.o"
  "CMakeFiles/lsched_support.dir/table.cc.o.d"
  "CMakeFiles/lsched_support.dir/timer.cc.o"
  "CMakeFiles/lsched_support.dir/timer.cc.o.d"
  "liblsched_support.a"
  "liblsched_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
