file(REMOVE_RECURSE
  "liblsched_support.a"
)
