# Empty dependencies file for lsched_harness.
# This may be replaced when dependencies are built.
