file(REMOVE_RECURSE
  "CMakeFiles/lsched_harness.dir/report.cc.o"
  "CMakeFiles/lsched_harness.dir/report.cc.o.d"
  "liblsched_harness.a"
  "liblsched_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
