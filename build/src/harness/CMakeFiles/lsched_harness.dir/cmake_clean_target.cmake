file(REMOVE_RECURSE
  "liblsched_harness.a"
)
