/** @file Tests for the DFS tree-layout pass (data-reordering
 *  counterpart of the paper's computation reordering). */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/machine_config.hh"
#include "workloads/nbody.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

NBodyConfig
cfg(std::size_t bodies)
{
    NBodyConfig c;
    c.bodies = bodies;
    c.seed = 77;
    return c;
}

TEST(NBodyLayout, ReorderPreservesTreeStructure)
{
    BarnesHut sim(cfg(512));
    NativeModel m;
    sim.buildTree(m);
    const std::size_t nodes_before = sim.nodes().size();
    const double root_mass = sim.nodes()[0].mass;
    sim.reorderTreeDfs();
    ASSERT_EQ(sim.nodes().size(), nodes_before);
    EXPECT_EQ(sim.nodes()[0].mass, root_mass);

    // Every node reachable exactly once; child geometry nests.
    std::vector<bool> visited(sim.nodes().size(), false);
    std::vector<std::int32_t> stack{0};
    std::size_t count = 0;
    while (!stack.empty()) {
        const std::int32_t i = stack.back();
        stack.pop_back();
        ASSERT_GE(i, 0);
        ASSERT_LT(static_cast<std::size_t>(i), sim.nodes().size());
        ASSERT_FALSE(visited[static_cast<std::size_t>(i)]);
        visited[static_cast<std::size_t>(i)] = true;
        ++count;
        const auto &n = sim.nodes()[static_cast<std::size_t>(i)];
        for (const auto c : n.child) {
            if (c < 0)
                continue;
            const auto &ch = sim.nodes()[static_cast<std::size_t>(c)];
            EXPECT_NEAR(ch.half * 2, n.half, 1e-12);
            stack.push_back(c);
        }
    }
    EXPECT_EQ(count, sim.nodes().size());
}

TEST(NBodyLayout, ChildrenFollowParentsInMemory)
{
    BarnesHut sim(cfg(2048));
    NativeModel m;
    sim.buildTree(m);
    sim.reorderTreeDfs();
    // DFS preorder: every child index exceeds its parent's.
    for (std::size_t i = 0; i < sim.nodes().size(); ++i) {
        for (const auto c : sim.nodes()[i].child) {
            if (c >= 0) {
                EXPECT_GT(static_cast<std::size_t>(c), i);
            }
        }
    }
    // And the first child is immediately adjacent.
    std::size_t adjacent = 0, internal = 0;
    for (std::size_t i = 0; i < sim.nodes().size(); ++i) {
        std::int32_t first = -1;
        for (const auto c : sim.nodes()[i].child)
            if (c >= 0 && (first < 0 || c < first))
                first = c;
        if (first >= 0) {
            ++internal;
            adjacent += static_cast<std::size_t>(first) == i + 1;
        }
    }
    EXPECT_EQ(adjacent, internal);
}

TEST(NBodyLayout, ForcesIdenticalAfterReorder)
{
    BarnesHut plain(cfg(1024)), reordered(cfg(1024));
    NativeModel m;
    plain.stepUnthreaded(m, false);
    reordered.stepUnthreaded(m, true);
    for (std::size_t i = 0; i < 1024; ++i) {
        EXPECT_EQ(plain.bodies()[i].ax, reordered.bodies()[i].ax);
        EXPECT_EQ(plain.bodies()[i].x, reordered.bodies()[i].x);
    }
}

TEST(NBodyLayout, DfsLayoutReducesL2Misses)
{
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 8);
    auto misses = [&](bool dfs) {
        return harness::simulateOn(machine, [&](SimModel &m) {
                   BarnesHut sim(cfg(4096));
                   sim.stepUnthreaded(m, dfs);
               })
            .l2.misses;
    };
    const auto insertion = misses(false);
    const auto dfs = misses(true);
    EXPECT_LT(dfs, insertion);
}

} // namespace
