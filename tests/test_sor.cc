/** @file Unit tests for the SOR workload. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "workloads/sor.hh"

namespace
{

using namespace lsched::workloads;

class SorTiledTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned,
                                                 std::size_t>>
{
};

TEST_P(SorTiledTest, HandTiledBitwiseEqualsUntiled)
{
    const auto [n, t, s] = GetParam();
    Matrix a = sorInit(n, 5);
    Matrix b = sorInit(n, 5);
    NativeModel m;
    sorUntiled(a, t, m);
    sorHandTiled(b, t, m, s);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SorTiledTest,
    ::testing::Values(std::make_tuple(3u, 1u, 18u),
                      std::make_tuple(8u, 3u, 2u),
                      std::make_tuple(16u, 5u, 18u),
                      std::make_tuple(33u, 7u, 5u),
                      std::make_tuple(64u, 10u, 18u),
                      std::make_tuple(65u, 4u, 1u),
                      std::make_tuple(20u, 30u, 18u)));

TEST(Sor, ThreadedConvergesToSameFixedPoint)
{
    // Chaotic relaxation: one sorThreaded call runs each cache-sized
    // strip of columns through all t iterations before the next strip
    // starts — a block-relaxation pass, not t global sweeps. Repeated
    // passes converge to the same unique fixed point (harmonic values
    // with fixed boundary) as the sequential order; "the goal is to
    // reach convergence" (paper Section 4.3).
    const std::size_t n = 16;
    Matrix a = sorInit(n, 5);
    Matrix b = sorInit(n, 5);
    NativeModel m;
    sorUntiled(a, 800, m);
    lsched::threads::SchedulerConfig cfg;
    cfg.blockBytes = 512; // 4-column strips: worst case for staleness
    lsched::threads::LocalityScheduler sched(cfg);
    for (int outer = 0; outer < 200; ++outer)
        sorThreaded(b, 4, sched, m);
    EXPECT_LT(sorDefect(a), 1e-12);
    EXPECT_LT(sorDefect(b), 1e-12);
    EXPECT_LT(a.maxAbsDiff(b), 1e-9);
}

TEST(Sor, SingleThreadedPassStillSmooths)
{
    // Even the paper's single th_run (all t iterations of a strip
    // before the next strip) reduces the defect substantially versus
    // the initial random array.
    const std::size_t n = 32;
    Matrix b = sorInit(n, 5);
    const double before = sorDefect(b);
    NativeModel m;
    lsched::threads::SchedulerConfig cfg;
    cfg.blockBytes = 2048;
    lsched::threads::LocalityScheduler sched(cfg);
    sorThreaded(b, 30, sched, m);
    EXPECT_LT(sorDefect(b), before / 10);
}

TEST(Sor, ThreadedForksAllThreadsUpFront)
{
    const std::size_t n = 16;
    const unsigned t = 4;
    Matrix a = sorInit(n, 1);
    NativeModel m;
    lsched::threads::LocalityScheduler sched;
    sorThreaded(a, t, sched, m);
    EXPECT_EQ(sched.stats().executedThreads,
              static_cast<std::uint64_t>(t) * (n - 2));
}

TEST(Sor, DefectDecreasesMonotonically)
{
    const std::size_t n = 20;
    Matrix a = sorInit(n, 9);
    NativeModel m;
    double last = sorDefect(a);
    for (int round = 0; round < 5; ++round) {
        sorUntiled(a, 10, m);
        const double d = sorDefect(a);
        EXPECT_LT(d, last);
        last = d;
    }
}

TEST(Sor, TracedMatchesNativeAndCountsRefs)
{
    const std::size_t n = 20;
    const unsigned t = 3;
    Matrix a = sorInit(n, 2);
    Matrix b = sorInit(n, 2);
    NativeModel nm;
    sorUntiled(a, t, nm);
    lsched::cachesim::Hierarchy h(
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(), 64)
            .caches);
    SimModel sm(h);
    sorUntiled(b, t, sm);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0);
    // 3 loads + 1 store per interior point per iteration.
    EXPECT_EQ(h.dataRefs(), 4u * (n - 2) * (n - 2) * t);
}

TEST(Sor, HandTiledChargesMoreInstructions)
{
    const std::size_t n = 32;
    const unsigned t = 8;
    Matrix a = sorInit(n, 2);
    Matrix b = sorInit(n, 2);
    const auto caches =
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(), 64)
            .caches;
    lsched::cachesim::Hierarchy hu(caches), ht(caches);
    SimModel mu(hu), mt(ht);
    sorUntiled(a, t, mu);
    sorHandTiled(b, t, mt);
    EXPECT_GT(ht.ifetches(), hu.ifetches());
    EXPECT_GT(ht.dataRefs(), hu.dataRefs());
}

TEST(Sor, DegenerateSizesAreSafe)
{
    NativeModel m;
    Matrix tiny = sorInit(2, 1); // no interior points
    sorUntiled(tiny, 5, m);
    sorHandTiled(tiny, 5, m);
    lsched::threads::LocalityScheduler sched;
    sorThreaded(tiny, 5, sched, m);
    EXPECT_EQ(sched.stats().executedThreads, 0u);
}

} // namespace
