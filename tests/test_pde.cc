/** @file Unit tests for the PDE (red-black Gauss-Seidel) workload. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "workloads/pde.hh"

namespace
{

using namespace lsched::workloads;

class PdeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PdeTest, CacheConsciousBitwiseEqualsRegular)
{
    const std::size_t n = GetParam();
    PdeGrid a(n), b(n);
    a.init(7);
    b.init(7);
    NativeModel m;
    pdeRegular(a, 5, m);
    pdeCacheConscious(b, 5, m);
    EXPECT_EQ(a.u.maxAbsDiff(b.u), 0.0);
    EXPECT_EQ(a.r.maxAbsDiff(b.r), 0.0);
}

TEST_P(PdeTest, ThreadedBitwiseEqualsRegular)
{
    const std::size_t n = GetParam();
    PdeGrid a(n), b(n);
    a.init(7);
    b.init(7);
    NativeModel m;
    pdeRegular(a, 5, m);
    lsched::threads::SchedulerConfig cfg;
    cfg.blockBytes = 2048; // small blocks: many bins, order stress
    lsched::threads::LocalityScheduler sched(cfg);
    pdeThreaded(b, 5, sched, m);
    EXPECT_EQ(a.u.maxAbsDiff(b.u), 0.0);
    EXPECT_EQ(a.r.maxAbsDiff(b.r), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PdeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 17, 33, 64));

TEST(Pde, ThreadCountIsIterationsTimesLinesPlusOne)
{
    const std::size_t n = 16;
    PdeGrid g(n);
    g.init(1);
    NativeModel m;
    lsched::threads::LocalityScheduler sched;
    pdeThreaded(g, 3, sched, m);
    EXPECT_EQ(sched.stats().executedThreads, 3 * (n + 1));
}

TEST(Pde, RelaxationReducesDefect)
{
    // The smoother must actually smooth: the residual norm after 20
    // iterations is far below the initial one.
    const std::size_t n = 32;
    PdeGrid g0(n), g(n);
    g0.init(3);
    g.init(3);
    NativeModel m;
    pdeRegular(g0, 1, m);
    pdeRegular(g, 40, m);
    auto norm = [&](const PdeGrid &grid) {
        double s = 0;
        for (std::size_t j = 1; j <= grid.n; ++j)
            for (std::size_t i = 1; i <= grid.n; ++i)
                s += grid.r(i, j) * grid.r(i, j);
        return s;
    };
    EXPECT_LT(norm(g), norm(g0) * 0.5);
}

TEST(Pde, IterationZeroLeavesGridUntouched)
{
    PdeGrid g(8);
    g.init(5);
    NativeModel m;
    pdeCacheConscious(g, 0, m);
    for (std::size_t j = 0; j < 10; ++j)
        for (std::size_t i = 0; i < 10; ++i)
            EXPECT_EQ(g.u(i, j), 0.0);
}

TEST(Pde, TracedMatchesNativeAndCountsRefs)
{
    const std::size_t n = 24;
    PdeGrid a(n), b(n);
    a.init(11);
    b.init(11);
    NativeModel nm;
    pdeRegular(a, 2, nm);

    lsched::cachesim::Hierarchy h(
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(), 64)
            .caches);
    SimModel sm(h);
    pdeRegular(b, 2, sm);
    EXPECT_EQ(a.u.maxAbsDiff(b.u), 0.0);
    // Update: 5 refs/point over 2 iterations; residual: 7 refs/point.
    EXPECT_EQ(h.dataRefs(), n * n * (2 * 5 + 7));
}

TEST(Pde, FusedVariantsIssueFewerReferences)
{
    const std::size_t n = 32;
    PdeGrid a(n), b(n);
    a.init(1);
    b.init(1);
    const auto caches =
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(), 64)
            .caches;
    lsched::cachesim::Hierarchy hr(caches), hc(caches);
    SimModel mr(hr), mc(hc);
    pdeRegular(a, 5, mr);
    pdeCacheConscious(b, 5, mc);
    EXPECT_LT(hc.dataRefs(), hr.dataRefs());
    EXPECT_LT(hc.ifetches(), hr.ifetches());
}

TEST(Pde, BoundaryHaloStaysZero)
{
    const std::size_t n = 12;
    PdeGrid g(n);
    g.init(9);
    NativeModel m;
    pdeRegular(g, 5, m);
    for (std::size_t k = 0; k < n + 2; ++k) {
        EXPECT_EQ(g.u(0, k), 0.0);
        EXPECT_EQ(g.u(n + 1, k), 0.0);
        EXPECT_EQ(g.u(k, 0), 0.0);
        EXPECT_EQ(g.u(k, n + 1), 0.0);
    }
}

} // namespace
