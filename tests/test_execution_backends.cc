/**
 * @file
 * Tests for the execution layer (threads/execution.hh): the three
 * backends run the same fork set exactly once with identical per-bin
 * membership, cold-spawn pays threads per tour where pooled does not,
 * and fault containment behaves identically on every backend (all of
 * them route through the one executeBin()).
 *
 * Lives in the pool test binary: everything here must stay clean under
 * LSCHED_SANITIZE=thread, so no death tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "support/failpoint.hh"
#include "threads/scheduler.hh"

namespace
{

namespace fp = lsched::failpoint;
using namespace lsched::threads;

SchedulerConfig
backendCfg(BackendKind backend)
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 12;
    c.backend = backend;
    c.groupCapacity = 8;
    return c;
}

/** Per-fork execution log: count and the bin that ran each tag. */
struct ForkLog
{
    std::vector<std::atomic<std::uint32_t>> count;
    std::vector<std::atomic<std::uint32_t>> bin;

    explicit ForkLog(std::size_t forks) : count(forks), bin(forks)
    {
        for (std::size_t i = 0; i < forks; ++i) {
            count[i].store(0);
            bin[i].store(~0u);
        }
    }
};

struct TaggedArg
{
    ForkLog *log;
    std::uint32_t tag;
    std::uint32_t binTag;
};

void
recordRun(void *arg, void *)
{
    const TaggedArg &t = *static_cast<const TaggedArg *>(arg);
    t.log->count[t.tag].fetch_add(1, std::memory_order_relaxed);
    t.log->bin[t.tag].store(t.binTag, std::memory_order_relaxed);
}

/** Fork kForks threads over kBlocks address blocks, round-robin. */
constexpr std::size_t kForks = 96;
constexpr std::size_t kBlocks = 12;

void
forkWorkload(LocalityScheduler &s, ForkLog &log,
             std::vector<TaggedArg> &args)
{
    args.resize(kForks);
    for (std::uint32_t i = 0; i < kForks; ++i) {
        const std::uint32_t block = i % kBlocks;
        args[i] = {&log, i, block};
        s.fork(recordRun, &args[i], nullptr,
               static_cast<Hint>(block) << 13, 0);
    }
}

TEST(ExecutionBackends, SameForkSetSameBinsOnEveryBackend)
{
    // The acceptance property of the layer split: with BlockHash
    // placement, backend choice changes *how* bins run, never *what*
    // runs or which threads share a bin.
    std::map<std::uint32_t, std::uint32_t> reference; // tag -> binTag
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        LocalityScheduler s(backendCfg(backend));
        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);

        EXPECT_EQ(s.runParallel(4), kForks)
            << backendName(backend);
        for (std::uint32_t i = 0; i < kForks; ++i) {
            EXPECT_EQ(log.count[i].load(), 1u)
                << backendName(backend) << " fork " << i;
            if (backend == BackendKind::Serial)
                reference[i] = log.bin[i].load();
            else
                EXPECT_EQ(log.bin[i].load(), reference[i])
                    << backendName(backend) << " fork " << i
                    << ": per-bin membership must match serial";
        }
        EXPECT_EQ(s.pendingThreads(), 0u);
    }
}

TEST(ExecutionBackends, ColdSpawnPaysThreadsPerTourPooledDoesNot)
{
    const auto spawnsAfterThreeTours = [](BackendKind backend) {
        LocalityScheduler s(backendCfg(backend));
        for (int tour = 0; tour < 3; ++tour) {
            ForkLog log(kForks);
            std::vector<TaggedArg> args;
            forkWorkload(s, log, args);
            s.runParallel(4);
        }
        EXPECT_EQ(s.workerPoolStats().tours, 3u)
            << backendName(backend);
        return s.workerPoolStats().threadsSpawned;
    };
    EXPECT_EQ(spawnsAfterThreeTours(BackendKind::Pooled), 3u);
    EXPECT_EQ(spawnsAfterThreeTours(BackendKind::ColdSpawn), 9u);
}

TEST(ExecutionBackends, SerialBackendIgnoresWorkerCount)
{
    // backend=serial must run the tour on the caller even when the
    // caller asks for parallel workers — no pool is ever built.
    LocalityScheduler s(backendCfg(BackendKind::Serial));
    ForkLog log(kForks);
    std::vector<TaggedArg> args;
    forkWorkload(s, log, args);
    EXPECT_EQ(s.runParallel(8), kForks);
    EXPECT_EQ(s.workerPoolStats().threadsSpawned, 0u);
    EXPECT_EQ(s.workerPoolStats().tours, 0u);
}

TEST(ExecutionBackends, StopTourContainsTheFaultOnEveryBackend)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        SchedulerConfig c = backendCfg(backend);
        c.onError = ErrorPolicy::StopTour;
        LocalityScheduler s(c);
        fp::disarmAll();
        ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=2"));

        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        EXPECT_THROW(s.runParallel(4), fp::Injected)
            << backendName(backend);
        EXPECT_EQ(s.lastFaultCount(), 1u) << backendName(backend);
        EXPECT_EQ(s.pendingThreads(), 0u) << backendName(backend);
        fp::disarmAll();

        // The scheduler (pool included) is immediately reusable.
        ForkLog fresh(kForks);
        forkWorkload(s, fresh, args);
        EXPECT_EQ(s.runParallel(4), kForks) << backendName(backend);
    }
}

TEST(ExecutionBackends, ContinueAndCollectRunsTheRestOnEveryBackend)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        SchedulerConfig c = backendCfg(backend);
        c.onError = ErrorPolicy::ContinueAndCollect;
        LocalityScheduler s(c);
        fp::disarmAll();
        // One bin's top-of-execution fault is recorded; every forked
        // thread still runs (the fault fires before the first item).
        ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=3"));

        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        EXPECT_EQ(s.runParallel(4), kForks) << backendName(backend);
        EXPECT_EQ(s.lastFaultCount(), 1u) << backendName(backend);
        for (std::uint32_t i = 0; i < kForks; ++i)
            EXPECT_EQ(log.count[i].load(), 1u)
                << backendName(backend) << " fork " << i;
        fp::disarmAll();
    }
}

TEST(ExecutionBackends, ReconfigureKeepsSpawnCountersMonotone)
{
    // Satellite regression: workerPoolStats() must accumulate across
    // configure() — the retired pool's spawns/steals/parks fold into
    // the running totals instead of resetting, whichever backend
    // retires them.
    LocalityScheduler s(backendCfg(BackendKind::Pooled));
    std::uint64_t lastSpawned = 0;
    for (int round = 0; round < 3; ++round) {
        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        s.runParallel(3);
        const WorkerPoolStats stats = s.workerPoolStats();
        EXPECT_GE(stats.threadsSpawned, lastSpawned)
            << "round " << round << ": threadsSpawned went backwards";
        EXPECT_EQ(stats.threadsSpawned, 2u * (round + 1))
            << "round " << round;
        lastSpawned = stats.threadsSpawned;

        SchedulerConfig next = backendCfg(
            round % 2 ? BackendKind::Pooled : BackendKind::ColdSpawn);
        s.configure(next); // retires the pool, stats must survive
        EXPECT_EQ(s.workerPoolStats().threadsSpawned, lastSpawned)
            << "round " << round << ": configure() dropped stats";
    }
    EXPECT_EQ(s.workerPoolStats().tours, 3u);
}

} // namespace
