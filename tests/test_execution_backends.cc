/**
 * @file
 * Tests for the execution layer (threads/execution.hh): the three
 * backends run the same fork set exactly once with identical per-bin
 * membership, cold-spawn pays threads per tour where pooled does not,
 * and fault containment behaves identically on every backend (all of
 * them route through the one executeBin()).
 *
 * Lives in the pool test binary: everything here must stay clean under
 * LSCHED_SANITIZE=thread, so no death tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "support/error.hh"
#include "support/failpoint.hh"
#include "threads/scheduler.hh"

namespace
{

namespace fp = lsched::failpoint;
using namespace lsched::threads;

SchedulerConfig
backendCfg(BackendKind backend)
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 12;
    c.backend = backend;
    c.groupCapacity = 8;
    return c;
}

/** Per-fork execution log: count and the bin that ran each tag. */
struct ForkLog
{
    std::vector<std::atomic<std::uint32_t>> count;
    std::vector<std::atomic<std::uint32_t>> bin;

    explicit ForkLog(std::size_t forks) : count(forks), bin(forks)
    {
        for (std::size_t i = 0; i < forks; ++i) {
            count[i].store(0);
            bin[i].store(~0u);
        }
    }
};

struct TaggedArg
{
    ForkLog *log;
    std::uint32_t tag;
    std::uint32_t binTag;
};

void
recordRun(void *arg, void *)
{
    const TaggedArg &t = *static_cast<const TaggedArg *>(arg);
    t.log->count[t.tag].fetch_add(1, std::memory_order_relaxed);
    t.log->bin[t.tag].store(t.binTag, std::memory_order_relaxed);
}

/** Fork kForks threads over kBlocks address blocks, round-robin. */
constexpr std::size_t kForks = 96;
constexpr std::size_t kBlocks = 12;

void
forkWorkload(LocalityScheduler &s, ForkLog &log,
             std::vector<TaggedArg> &args)
{
    args.resize(kForks);
    for (std::uint32_t i = 0; i < kForks; ++i) {
        const std::uint32_t block = i % kBlocks;
        args[i] = {&log, i, block};
        s.fork(recordRun, &args[i], nullptr,
               static_cast<Hint>(block) << 13, 0);
    }
}

TEST(ExecutionBackends, SameForkSetSameBinsOnEveryBackend)
{
    // The acceptance property of the layer split: with BlockHash
    // placement, backend choice changes *how* bins run, never *what*
    // runs or which threads share a bin.
    std::map<std::uint32_t, std::uint32_t> reference; // tag -> binTag
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        LocalityScheduler s(backendCfg(backend));
        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);

        EXPECT_EQ(s.runParallel(4), kForks)
            << backendName(backend);
        for (std::uint32_t i = 0; i < kForks; ++i) {
            EXPECT_EQ(log.count[i].load(), 1u)
                << backendName(backend) << " fork " << i;
            if (backend == BackendKind::Serial)
                reference[i] = log.bin[i].load();
            else
                EXPECT_EQ(log.bin[i].load(), reference[i])
                    << backendName(backend) << " fork " << i
                    << ": per-bin membership must match serial";
        }
        EXPECT_EQ(s.pendingThreads(), 0u);
    }
}

TEST(ExecutionBackends, ColdSpawnPaysThreadsPerTourPooledDoesNot)
{
    const auto spawnsAfterThreeTours = [](BackendKind backend) {
        LocalityScheduler s(backendCfg(backend));
        for (int tour = 0; tour < 3; ++tour) {
            ForkLog log(kForks);
            std::vector<TaggedArg> args;
            forkWorkload(s, log, args);
            s.runParallel(4);
        }
        EXPECT_EQ(s.workerPoolStats().tours, 3u)
            << backendName(backend);
        return s.workerPoolStats().threadsSpawned;
    };
    EXPECT_EQ(spawnsAfterThreeTours(BackendKind::Pooled), 3u);
    EXPECT_EQ(spawnsAfterThreeTours(BackendKind::ColdSpawn), 9u);
}

TEST(ExecutionBackends, SerialBackendIgnoresWorkerCount)
{
    // backend=serial must run the tour on the caller even when the
    // caller asks for parallel workers — no pool is ever built.
    LocalityScheduler s(backendCfg(BackendKind::Serial));
    ForkLog log(kForks);
    std::vector<TaggedArg> args;
    forkWorkload(s, log, args);
    EXPECT_EQ(s.runParallel(8), kForks);
    EXPECT_EQ(s.workerPoolStats().threadsSpawned, 0u);
    EXPECT_EQ(s.workerPoolStats().tours, 0u);
}

TEST(ExecutionBackends, StopTourContainsTheFaultOnEveryBackend)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        SchedulerConfig c = backendCfg(backend);
        c.onError = ErrorPolicy::StopTour;
        LocalityScheduler s(c);
        fp::disarmAll();
        ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=2"));

        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        EXPECT_THROW(s.runParallel(4), fp::Injected)
            << backendName(backend);
        EXPECT_EQ(s.lastFaultCount(), 1u) << backendName(backend);
        EXPECT_EQ(s.pendingThreads(), 0u) << backendName(backend);
        fp::disarmAll();

        // The scheduler (pool included) is immediately reusable.
        ForkLog fresh(kForks);
        forkWorkload(s, fresh, args);
        EXPECT_EQ(s.runParallel(4), kForks) << backendName(backend);
    }
}

TEST(ExecutionBackends, ContinueAndCollectRunsTheRestOnEveryBackend)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        SchedulerConfig c = backendCfg(backend);
        c.onError = ErrorPolicy::ContinueAndCollect;
        LocalityScheduler s(c);
        fp::disarmAll();
        // One bin's top-of-execution fault is recorded; every forked
        // thread still runs (the fault fires before the first item).
        ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=3"));

        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        EXPECT_EQ(s.runParallel(4), kForks) << backendName(backend);
        EXPECT_EQ(s.lastFaultCount(), 1u) << backendName(backend);
        for (std::uint32_t i = 0; i < kForks; ++i)
            EXPECT_EQ(log.count[i].load(), 1u)
                << backendName(backend) << " fork " << i;
        fp::disarmAll();
    }
}

TEST(ExecutionBackends, DeadlineCancelsAWedgedTourOnEveryBackend)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    // Abort and StopTour surface an expired deadline as DeadlineError;
    // the scheduler is clean and reusable afterwards — on all three
    // backends, since every one routes through the same executeBin()
    // cancellation boundary.
    for (const ErrorPolicy policy :
         {ErrorPolicy::Abort, ErrorPolicy::StopTour}) {
        for (const BackendKind backend :
             {BackendKind::Serial, BackendKind::Pooled,
              BackendKind::ColdSpawn}) {
            SchedulerConfig c = backendCfg(backend);
            c.onError = policy;
            c.deadlineMillis = 50;
            LocalityScheduler s(c);
            fp::disarmAll();
            // Every bin execution stalls well past the deadline: a
            // wedged worker, not a thrown fault.
            ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=150"));

            ForkLog log(kForks);
            std::vector<TaggedArg> args;
            forkWorkload(s, log, args);
            const RecoverySnapshot before = s.recoverySnapshot();
            EXPECT_THROW(s.runParallel(4), lsched::DeadlineError)
                << backendName(backend);
            fp::disarmAll();

            const RecoverySnapshot after = s.recoverySnapshot();
            EXPECT_EQ(after.deadlines, before.deadlines + 1)
                << backendName(backend);
            EXPECT_GT(after.cancelledThreads, before.cancelledThreads)
                << backendName(backend);
            EXPECT_EQ(s.pendingThreads(), 0u) << backendName(backend);

            // Immediately reusable: the cancelled tour left no debris.
            ForkLog fresh(kForks);
            forkWorkload(s, fresh, args);
            EXPECT_EQ(s.runParallel(4), kForks)
                << backendName(backend);
        }
    }
}

TEST(ExecutionBackends, DeadlineUnderContinueAndCollectIsRecorded)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    // ContinueAndCollect returns normally from a cancelled tour: the
    // dropped threads are accounted as per-bin cancellation faults and
    // executed + faults covers every fork exactly once.
    for (const BackendKind backend :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        SchedulerConfig c = backendCfg(backend);
        c.onError = ErrorPolicy::ContinueAndCollect;
        c.deadlineMillis = 50;
        LocalityScheduler s(c);
        fp::disarmAll();
        ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=150"));

        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        std::uint64_t executed = 0;
        EXPECT_NO_THROW(executed = s.runParallel(4))
            << backendName(backend);
        fp::disarmAll();

        EXPECT_LT(executed, kForks) << backendName(backend);
        EXPECT_EQ(executed + s.lastFaultCount(), kForks)
            << backendName(backend);
        EXPECT_GT(s.recoverySnapshot().cancelledBins, 0u)
            << backendName(backend);
        EXPECT_EQ(s.pendingThreads(), 0u) << backendName(backend);
        for (std::uint32_t i = 0; i < kForks; ++i)
            EXPECT_LE(log.count[i].load(), 1u)
                << backendName(backend) << " fork " << i
                << ": ran twice";
    }
}

TEST(ExecutionBackends, WatchdogActionCancelEscalatesToDeadlineError)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    SchedulerConfig c = backendCfg(BackendKind::Pooled);
    c.watchdogMillis = 40;
    c.watchdogAction = WatchdogAction::Cancel;
    LocalityScheduler s(c);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=150"));

    ForkLog log(kForks);
    std::vector<TaggedArg> args;
    forkWorkload(s, log, args);
    EXPECT_THROW(s.runParallel(4), lsched::DeadlineError);
    fp::disarmAll();
    EXPECT_EQ(s.recoverySnapshot().watchdogCancels, 1u);
    EXPECT_EQ(s.pendingThreads(), 0u);

    // The default watchdog action still only reports: same stall, a
    // longer leash, and the tour completes with zero cancellations.
    SchedulerConfig observe = backendCfg(BackendKind::Pooled);
    observe.watchdogMillis = 40;
    LocalityScheduler s2(observe);
    ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=30"));
    ForkLog fresh(kForks);
    forkWorkload(s2, fresh, args);
    EXPECT_EQ(s2.runParallel(4), kForks);
    fp::disarmAll();
    EXPECT_EQ(s2.recoverySnapshot().watchdogCancels, 0u);
}

TEST(ExecutionBackends, GovernorDegradesToSerialAndRecovers)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    // Two consecutive deadline-cancelled tours degrade the governor;
    // degraded tours step down to the serial path (no new pool tours)
    // until two healthy tours in a row recover it.
    SchedulerConfig c = backendCfg(BackendKind::Pooled);
    c.onError = ErrorPolicy::ContinueAndCollect;
    c.deadlineMillis = 40;
    c.overloadEpochs = 2;
    c.recoverEpochs = 2;
    LocalityScheduler s(c);
    fp::disarmAll();

    for (int round = 0; round < 2; ++round) {
        ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=120"));
        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        s.runParallel(4);
        fp::disarmAll();
    }
    EXPECT_EQ(s.recoveryState(), RecoveryState::Degraded);
    const std::uint64_t poolTours = s.workerPoolStats().tours;

    // Degraded: the next two tours run serially (and healthily).
    for (int round = 0; round < 2; ++round) {
        EXPECT_EQ(s.recoveryState(), RecoveryState::Degraded)
            << "round " << round;
        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        EXPECT_EQ(s.runParallel(4), kForks) << "round " << round;
    }
    EXPECT_EQ(s.workerPoolStats().tours, poolTours)
        << "degraded tours must not fan out over the pool";
    EXPECT_EQ(s.recoverySnapshot().degradedTours, 2u);
    EXPECT_EQ(s.recoveryState(), RecoveryState::Recovered);
    EXPECT_EQ(s.recoverySnapshot().recoveries, 1u);

    // Recovered behaves as healthy: the pool fans out again.
    ForkLog log(kForks);
    std::vector<TaggedArg> args;
    forkWorkload(s, log, args);
    EXPECT_EQ(s.runParallel(4), kForks);
    EXPECT_EQ(s.workerPoolStats().tours, poolTours + 1);
    EXPECT_EQ(s.recoveryState(), RecoveryState::Healthy);
}

TEST(ExecutionBackends, ReconfigureKeepsSpawnCountersMonotone)
{
    // Satellite regression: workerPoolStats() must accumulate across
    // configure() — the retired pool's spawns/steals/parks fold into
    // the running totals instead of resetting, whichever backend
    // retires them.
    LocalityScheduler s(backendCfg(BackendKind::Pooled));
    std::uint64_t lastSpawned = 0;
    for (int round = 0; round < 3; ++round) {
        ForkLog log(kForks);
        std::vector<TaggedArg> args;
        forkWorkload(s, log, args);
        s.runParallel(3);
        const WorkerPoolStats stats = s.workerPoolStats();
        EXPECT_GE(stats.threadsSpawned, lastSpawned)
            << "round " << round << ": threadsSpawned went backwards";
        EXPECT_EQ(stats.threadsSpawned, 2u * (round + 1))
            << "round " << round;
        lastSpawned = stats.threadsSpawned;

        SchedulerConfig next = backendCfg(
            round % 2 ? BackendKind::Pooled : BackendKind::ColdSpawn);
        s.configure(next); // retires the pool, stats must survive
        EXPECT_EQ(s.workerPoolStats().threadsSpawned, lastSpawned)
            << "round " << round << ": configure() dropped stats";
    }
    EXPECT_EQ(s.workerPoolStats().tours, 3u);
}

} // namespace
