/** @file Unit tests for the multigrid Poisson solver. */

#include <gtest/gtest.h>

#include <cmath>

#include "support/prng.hh"
#include "workloads/multigrid.hh"

namespace
{

using namespace lsched::workloads;

void
fillRhs(MultigridSolver &solver, std::uint64_t seed)
{
    lsched::Prng prng(seed);
    Matrix &b = solver.rhs();
    for (std::size_t j = 1; j <= solver.n(); ++j)
        for (std::size_t i = 1; i <= solver.n(); ++i)
            b(i, j) = prng.nextDouble(-1.0, 1.0);
}

TEST(Multigrid, HierarchyDepthMatchesGridSize)
{
    MultigridSolver s63(63);
    // 63 -> 31 -> 15 -> 7 -> 3.
    EXPECT_EQ(s63.levelCount(), 5u);
    MultigridSolver s3(3);
    EXPECT_EQ(s3.levelCount(), 1u);
}

TEST(MultigridDeathTest, RejectsNonPowerOfTwoMinusOne)
{
    EXPECT_DEATH(MultigridSolver s(64), "2\\^k - 1");
}

TEST(Multigrid, VcycleContractsResidual)
{
    MultigridSolver solver(63);
    fillRhs(solver, 11);
    const double r0 = solver.residualNorm();
    const double r1 = solver.vcycle();
    const double r2 = solver.vcycle();
    const double r3 = solver.vcycle();
    // Textbook multigrid: about an order of magnitude per V-cycle.
    EXPECT_LT(r1, r0 * 0.2);
    EXPECT_LT(r2, r1 * 0.2);
    EXPECT_LT(r3, r2 * 0.2);
}

TEST(Multigrid, SolveReachesTargetQuickly)
{
    MultigridSolver solver(63);
    fillRhs(solver, 4);
    const double r0 = solver.residualNorm();
    const unsigned cycles = solver.solve(r0 * 1e-8, 30);
    EXPECT_LE(cycles, 12u);
    EXPECT_LE(solver.residualNorm(), r0 * 1e-8);
}

TEST(Multigrid, SolutionSatisfiesTheStencil)
{
    MultigridSolver solver(31);
    fillRhs(solver, 9);
    solver.solve(1e-10, 40);
    const Matrix &u = solver.solution();
    const Matrix &b = solver.rhs();
    for (std::size_t j = 1; j <= solver.n(); ++j) {
        for (std::size_t i = 1; i <= solver.n(); ++i) {
            const double lhs = 4.0 * u(i, j) - u(i - 1, j) -
                               u(i + 1, j) - u(i, j - 1) - u(i, j + 1);
            EXPECT_NEAR(lhs, b(i, j), 1e-7);
        }
    }
}

TEST(Multigrid, ThreadedSmootherGivesIdenticalResults)
{
    // The threaded line-pair smoother preserves the red-black update
    // order exactly, so whole V-cycles are bitwise reproducible.
    MultigridConfig plain;
    MultigridConfig threaded;
    threaded.threaded = true;
    MultigridSolver a(63, plain), b(63, threaded);
    fillRhs(a, 21);
    fillRhs(b, 21);
    for (int cycle = 0; cycle < 3; ++cycle) {
        a.vcycle();
        b.vcycle();
    }
    double worst = 0;
    for (std::size_t j = 1; j <= a.n(); ++j)
        for (std::size_t i = 1; i <= a.n(); ++i)
            worst = std::max(worst, std::abs(a.solution()(i, j) -
                                             b.solution()(i, j)));
    EXPECT_EQ(worst, 0.0);
}

TEST(Multigrid, VcyclesBeatPlainSmoothingAtEqualSweeps)
{
    // The multigrid point: a V-cycle's coarse corrections kill the
    // low-frequency error a smoother alone cannot reach.
    MultigridConfig mg_cfg;
    MultigridSolver mg(63, mg_cfg);
    fillRhs(mg, 5);

    MultigridConfig smooth_cfg;
    smooth_cfg.coarsestN = 63; // degenerate: one level, smoother only
    smooth_cfg.coarseSweeps = 40;
    MultigridSolver smoother(63, smooth_cfg);
    fillRhs(smoother, 5);

    const double mg_r = [&] {
        double r = 0;
        for (int i = 0; i < 3; ++i)
            r = mg.vcycle();
        return r;
    }();
    const double smooth_r = smoother.vcycle();
    EXPECT_LT(mg_r, smooth_r / 10);
}

TEST(Multigrid, ResetSolutionStartsOver)
{
    MultigridSolver solver(31);
    fillRhs(solver, 2);
    const double r0 = solver.residualNorm();
    solver.vcycle();
    solver.resetSolution();
    EXPECT_NEAR(solver.residualNorm(), r0, 1e-12);
}

} // namespace
