/** @file Unit tests for support/table.hh. */

#include <gtest/gtest.h>

#include "support/table.hh"

namespace
{

using lsched::TextTable;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Title", {"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("Title"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t("", {"n", "v"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "100"});
    const std::string text = t.toText();
    // All data lines must have equal width.
    std::size_t width = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string line = text.substr(pos, eol - pos);
        if (!line.empty() && line[0] == '|') {
            if (!width)
                width = line.size();
            EXPECT_EQ(line.size(), width);
        }
        pos = eol + 1;
    }
}

TEST(TextTable, CsvEscapesCommasAndQuotes)
{
    TextTable t("", {"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, RuleSeparatesRowGroups)
{
    TextTable t("", {"a", "b"});
    t.addRow({"x", "1"});
    t.addRule();
    t.addRow({"y", "2"});
    const std::string text = t.toText();
    // Count horizontal rules: top, under header, mid, bottom = 4.
    std::size_t rules = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        if (text[pos] == '-')
            ++rules;
        pos = eol + 1;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(TextTable, CsvIgnoresRules)
{
    TextTable t("", {"a"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    EXPECT_EQ(t.toCsv(), "a\n1\n2\n");
}

TEST(TextTableDeathTest, RowWidthMismatchPanics)
{
    TextTable t("", {"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, CountAddsThousandsSeparators)
{
    EXPECT_EQ(TextTable::count(0), "0");
    EXPECT_EQ(TextTable::count(999), "999");
    EXPECT_EQ(TextTable::count(1000), "1,000");
    EXPECT_EQ(TextTable::count(1048576), "1,048,576");
}

TEST(TextTable, ThousandsRoundsToNearest)
{
    EXPECT_EQ(TextTable::thousands(1499), "1");
    EXPECT_EQ(TextTable::thousands(1500), "2");
    EXPECT_EQ(TextTable::thousands(68225000), "68,225");
}

} // namespace
