/**
 * @file
 * Tests for the trace session and the Chrome trace-event exporter: a
 * golden rendering of a hand-built lane, structural well-formedness of
 * a live multi-worker capture, and session hygiene (wrap accounting,
 * clear, runtime disable).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "threads/scheduler.hh"

namespace
{

namespace obs = lsched::obs;
namespace threads = lsched::threads;

using obs::Event;
using obs::EventType;
using obs::LaneSnapshot;

/** Every brace/bracket closes in order and the document is one value. */
bool
balancedJson(const std::string &s)
{
    std::vector<char> stack;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char ch = s[i];
        if (in_string) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        switch (ch) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            stack.push_back(ch);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return stack.empty() && !in_string;
}

TEST(ObsChromeTrace, GoldenRenderingOfHandBuiltLane)
{
    LaneSnapshot lane;
    lane.id = 7;
    lane.name = "worker 7";
    lane.events = {
        {1000, 5, 2, 1, EventType::RunBegin},
        {1500, 3, 0, 0, EventType::ThreadFork},
        {2000, 3, 1, 0, EventType::BinStart},
        {2500, 3, 0, 0, EventType::ThreadStart},
        {3000, 3, 0, 0, EventType::ThreadEnd},
        {4000, 3, 1, 0, EventType::BinEnd},
        {5000, 1, 0, 0, EventType::RunEnd},
    };

    const std::string expected =
        "{\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":7,"
        "\"args\":{\"name\":\"worker 7\"}},"
        "{\"name\":\"run\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":7,\"ts\":0.000,\"dur\":4.000,"
        "\"args\":{\"pending\":5,\"bins\":2,\"workers\":1}},"
        "{\"name\":\"fork\",\"cat\":\"sched\",\"ph\":\"i\",\"pid\":1,"
        "\"tid\":7,\"ts\":0.500,\"s\":\"t\",\"args\":{\"bin\":3}},"
        "{\"name\":\"bin 3\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":7,\"ts\":1.000,\"dur\":2.000,"
        "\"args\":{\"bin\":3,\"threads\":1}},"
        "{\"name\":\"thread\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":7,\"ts\":1.500,\"dur\":0.500,\"args\":{\"bin\":3}}"
        "],\"displayTimeUnit\":\"ms\"}";

    EXPECT_EQ(obs::chromeTraceJson({lane}), expected);
}

TEST(ObsChromeTrace, UnpairedBeginClosesAtLaneEnd)
{
    LaneSnapshot lane;
    lane.id = 0;
    lane.name = "thread 0";
    lane.events = {
        {100, 1, 0, 1, EventType::RunBegin},
        {400, 2, 0, 0, EventType::ThreadFork},
    };
    const std::string json = obs::chromeTraceJson({lane});
    EXPECT_TRUE(balancedJson(json)) << json;
    // The open run slice is closed at the lane's last timestamp.
    EXPECT_NE(json.find("\"name\":\"run\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":0.300"), std::string::npos) << json;
}

TEST(ObsChromeTrace, EmptySessionRendersValidDocument)
{
    const std::string json = obs::chromeTraceJson({});
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

void
noopThread(void *, void *)
{
}

class ObsTraceLiveTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!obs::kTraceCompiled)
            GTEST_SKIP() << "tracing compiled out "
                            "(LSCHED_TRACE_ENABLED=0)";
        obs::TraceSession::global().clear();
        obs::setTraceEnabled(true);
    }

    void
    TearDown() override
    {
        obs::setTraceEnabled(false);
        obs::TraceSession::global().clear();
    }
};

TEST_F(ObsTraceLiveTest, ParallelRunProducesOrderedWorkerLanes)
{
    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 4096;
    threads::LocalityScheduler sched(cfg);
    for (std::uint64_t i = 0; i < 200; ++i) {
        sched.fork(&noopThread, nullptr, nullptr,
                   static_cast<threads::Hint>(i * 1024));
    }
    ASSERT_EQ(sched.runParallel(4, false), 200u);

    const auto lanes = obs::TraceSession::global().snapshot();
    // Main thread (worker 0) plus three spawned workers.
    ASSERT_EQ(lanes.size(), 4u);

    std::size_t named_workers = 0;
    bool saw_claim = false;
    for (const auto &lane : lanes) {
        if (lane.name.rfind("worker ", 0) == 0)
            ++named_workers;
        // Within a lane, timestamps never go backwards.
        for (std::size_t i = 1; i < lane.events.size(); ++i)
            EXPECT_GE(lane.events[i].ns, lane.events[i - 1].ns);
        for (const Event &e : lane.events)
            saw_claim |= e.type == EventType::WorkerClaimBin;
    }
    EXPECT_EQ(named_workers, 4u);
    EXPECT_TRUE(saw_claim);

    const std::string json = obs::chromeTraceJson(lanes);
    EXPECT_TRUE(balancedJson(json));
    EXPECT_NE(json.find("claim bin"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"run\""), std::string::npos);
}

TEST_F(ObsTraceLiveTest, LaneWrapSurfacesDropCount)
{
    auto &session = obs::TraceSession::global();
    session.setLaneCapacity(16);
    for (std::uint64_t i = 0; i < 100; ++i)
        session.record(EventType::ThreadFork, i);
    const auto lanes = session.snapshot();
    ASSERT_EQ(lanes.size(), 1u);
    EXPECT_EQ(lanes[0].events.size(), 16u);
    EXPECT_EQ(lanes[0].dropped, 84u);
    // The retained tail is the newest events.
    EXPECT_EQ(lanes[0].events.back().a, 99u);
    session.setLaneCapacity(obs::TraceSession::kDefaultLaneCapacity);
}

TEST_F(ObsTraceLiveTest, DisableStopsRecordingAndClearDropsLanes)
{
    threads::LocalityScheduler sched;
    sched.fork(&noopThread, nullptr, nullptr);
    sched.run(false);
    ASSERT_GE(obs::TraceSession::global().laneCount(), 1u);

    obs::setTraceEnabled(false);
    obs::TraceSession::global().clear();
    EXPECT_EQ(obs::TraceSession::global().laneCount(), 0u);

    // With tracing off, scheduler activity registers no lanes.
    sched.fork(&noopThread, nullptr, nullptr);
    sched.run(false);
    EXPECT_EQ(obs::TraceSession::global().laneCount(), 0u);
}

TEST_F(ObsTraceLiveTest, WriteChromeTraceCreatesLoadableFile)
{
    threads::LocalityScheduler sched;
    sched.fork(&noopThread, nullptr, nullptr);
    sched.run(false);

    const std::string path =
        ::testing::TempDir() + "lsched_trace_test.json";
    ASSERT_TRUE(obs::writeChromeTrace(path));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_TRUE(balancedJson(content)) << content;
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
}

} // namespace
