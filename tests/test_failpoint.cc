/** @file Fail-point subsystem tests (support/failpoint.hh). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/failpoint.hh"

namespace
{

namespace fp = lsched::failpoint;

// Defined (and therefore run) before the disarming fixture below:
// when the driver sets LSCHED_FAILPOINTS, its sites must have been
// armed by static initialization, before main().
TEST(FailpointEnv, EnvListIsArmedAtStartup)
{
    const char *env = std::getenv("LSCHED_FAILPOINTS");
    if (!env || !*env)
        GTEST_SKIP() << "LSCHED_FAILPOINTS not set";
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    EXPECT_FALSE(fp::armedSites().empty()) << "env: " << env;
}

TEST(FailpointCompiledOut, EverythingIsInertWhenCompiledOut)
{
    if (fp::kCompiled)
        GTEST_SKIP() << "fail points compiled in";
    std::string error;
    EXPECT_FALSE(fp::arm("test.site", "always", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fp::anyArmed());
    EXPECT_FALSE(fp::shouldFail("test.site"));
    EXPECT_TRUE(fp::armedSites().empty());
    EXPECT_NO_THROW(LSCHED_FAILPOINT("test.site"));
    EXPECT_FALSE(LSCHED_FAILPOINT_HIT("test.site"));
}

/**
 * Disarm everything around each test so sites never leak; skipped
 * wholesale in a compiled-out build (the nofailpoints preset), which
 * FailpointCompiledOut covers instead.
 */
class Failpoint : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        if (!fp::kCompiled)
            GTEST_SKIP() << "fail points compiled out";
        fp::disarmAll();
    }
    void TearDown() override { fp::disarmAll(); }
};

TEST_F(Failpoint, DisarmedSiteNeverFires)
{
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fp::shouldFail("test.nowhere"));
    EXPECT_EQ(fp::hitCount("test.nowhere"), 0u);
    EXPECT_FALSE(fp::anyArmed());
}

TEST_F(Failpoint, AlwaysFiresEveryTime)
{
    ASSERT_TRUE(fp::arm("test.site", "always"));
    EXPECT_TRUE(fp::anyArmed());
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(fp::shouldFail("test.site"));
    EXPECT_EQ(fp::hitCount("test.site"), 5u);
    EXPECT_EQ(fp::fireCount("test.site"), 5u);
}

TEST_F(Failpoint, OnceFiresExactlyOnce)
{
    ASSERT_TRUE(fp::arm("test.site", "once"));
    EXPECT_TRUE(fp::shouldFail("test.site"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(fp::shouldFail("test.site"));
    EXPECT_EQ(fp::fireCount("test.site"), 1u);
}

TEST_F(Failpoint, HitFiresOnExactlyTheNthEvaluation)
{
    ASSERT_TRUE(fp::arm("test.site", "hit=3"));
    EXPECT_FALSE(fp::shouldFail("test.site"));
    EXPECT_FALSE(fp::shouldFail("test.site"));
    EXPECT_TRUE(fp::shouldFail("test.site"));
    EXPECT_FALSE(fp::shouldFail("test.site"));
    EXPECT_EQ(fp::hitCount("test.site"), 4u);
    EXPECT_EQ(fp::fireCount("test.site"), 1u);
}

TEST_F(Failpoint, EveryFiresPeriodically)
{
    ASSERT_TRUE(fp::arm("test.site", "every=3"));
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(fp::shouldFail("test.site"));
    const std::vector<bool> expect = {false, false, true,  false, false,
                                      true,  false, false, true};
    EXPECT_EQ(fired, expect);
}

TEST_F(Failpoint, ProbIsDeterministicForAFixedSeed)
{
    ASSERT_TRUE(fp::arm("test.site", "prob=0.5@42"));
    std::vector<bool> first;
    for (int i = 0; i < 64; ++i)
        first.push_back(fp::shouldFail("test.site"));
    // Re-arming resets the sequence: identical spec, identical run.
    ASSERT_TRUE(fp::arm("test.site", "prob=0.5@42"));
    std::vector<bool> second;
    for (int i = 0; i < 64; ++i)
        second.push_back(fp::shouldFail("test.site"));
    EXPECT_EQ(first, second);
    // p = 0.5 over 64 draws virtually never yields all-true/all-false.
    EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
    EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(Failpoint, ProbExtremesAreExact)
{
    ASSERT_TRUE(fp::arm("test.never", "prob=0"));
    ASSERT_TRUE(fp::arm("test.ever", "prob=1"));
    for (int i = 0; i < 32; ++i) {
        EXPECT_FALSE(fp::shouldFail("test.never"));
        EXPECT_TRUE(fp::shouldFail("test.ever"));
    }
}

TEST_F(Failpoint, OffAndDisarmStopTheSite)
{
    ASSERT_TRUE(fp::arm("test.site", "always"));
    ASSERT_TRUE(fp::arm("test.site", "off"));
    EXPECT_FALSE(fp::shouldFail("test.site"));
    ASSERT_TRUE(fp::arm("test.site", "always"));
    fp::disarm("test.site");
    EXPECT_FALSE(fp::shouldFail("test.site"));
    EXPECT_FALSE(fp::anyArmed());
}

TEST_F(Failpoint, MalformedSpecsAreRejectedWithAReason)
{
    const char *bad[] = {"",        "bogus",    "hit=",     "hit=0",
                         "hit=x",   "every=0",  "prob=",    "prob=2",
                         "prob=-1", "prob=0.5@"};
    for (const char *spec : bad) {
        std::string error;
        EXPECT_FALSE(fp::arm("test.site", spec, &error))
            << "spec accepted: " << spec;
        EXPECT_FALSE(error.empty()) << "no reason for: " << spec;
    }
    EXPECT_FALSE(fp::anyArmed());
}

TEST_F(Failpoint, ArmedSitesListsEveryArmedSite)
{
    ASSERT_TRUE(fp::arm("test.a", "always"));
    ASSERT_TRUE(fp::arm("test.b", "hit=2"));
    std::vector<std::string> sites = fp::armedSites();
    std::sort(sites.begin(), sites.end());
    EXPECT_EQ(sites, (std::vector<std::string>{"test.a", "test.b"}));
    fp::disarmAll();
    EXPECT_TRUE(fp::armedSites().empty());
}

TEST_F(Failpoint, ArmListParsesTheEnvFormat)
{
    ASSERT_TRUE(fp::armList("test.a:hit=2,test.b:always"));
    EXPECT_FALSE(fp::shouldFail("test.a"));
    EXPECT_TRUE(fp::shouldFail("test.a"));
    EXPECT_TRUE(fp::shouldFail("test.b"));

    std::string error;
    EXPECT_FALSE(fp::armList("test.c", &error)); // no ':'
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fp::armList("test.c:bogus", &error));
}

TEST_F(Failpoint, MacroThrowsInjectedWithTheSiteName)
{
    ASSERT_TRUE(fp::arm("test.macro", "always"));
    try {
        LSCHED_FAILPOINT("test.macro");
        FAIL() << "fail point did not fire";
    } catch (const fp::Injected &e) {
        EXPECT_EQ(e.site(), "test.macro");
        EXPECT_NE(std::string(e.what()).find("test.macro"),
                  std::string::npos);
    }
    // Disarmed, the same macro is a no-op.
    fp::disarm("test.macro");
    EXPECT_NO_THROW(LSCHED_FAILPOINT("test.macro"));
}

} // namespace
