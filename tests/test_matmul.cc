/** @file Unit tests for the matrix-multiply workload variants. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched::workloads;

/** Naive reference multiply. */
Matrix
reference(const Matrix &a, const Matrix &b)
{
    const std::size_t n = a.rows();
    Matrix c(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0;
            for (std::size_t k = 0; k < n; ++k)
                s += a(i, k) * b(k, j);
            c(i, j) = s;
        }
    return c;
}

class MatmulTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        n_ = GetParam();
        a_ = std::make_unique<Matrix>(n_, n_);
        b_ = std::make_unique<Matrix>(n_, n_);
        randomize(*a_, 1);
        randomize(*b_, 2);
        ref_ = std::make_unique<Matrix>(reference(*a_, *b_));
    }

    std::size_t n_ = 0;
    std::unique_ptr<Matrix> a_, b_, ref_;
};

TEST_P(MatmulTest, InterchangedMatchesReference)
{
    Matrix c(n_, n_);
    NativeModel m;
    matmulInterchanged(*a_, *b_, c, m);
    EXPECT_LT(c.maxAbsDiff(*ref_), 1e-9 * static_cast<double>(n_));
}

TEST_P(MatmulTest, TransposedMatchesReference)
{
    Matrix c(n_, n_);
    NativeModel m;
    matmulTransposed(*a_, *b_, c, m);
    EXPECT_LT(c.maxAbsDiff(*ref_), 1e-9 * static_cast<double>(n_));
}

TEST_P(MatmulTest, TiledInterchangedMatchesReference)
{
    Matrix c(n_, n_);
    NativeModel m;
    matmulTiledInterchanged(*a_, *b_, c, m, 16 * 1024, 128 * 1024);
    EXPECT_LT(c.maxAbsDiff(*ref_), 1e-9 * static_cast<double>(n_));
}

TEST_P(MatmulTest, TiledTransposedMatchesReference)
{
    Matrix c(n_, n_);
    NativeModel m;
    matmulTiledTransposed(*a_, *b_, c, m, 16 * 1024, 128 * 1024);
    EXPECT_LT(c.maxAbsDiff(*ref_), 1e-9 * static_cast<double>(n_));
}

TEST_P(MatmulTest, ThreadedMatchesReference)
{
    Matrix c(n_, n_);
    NativeModel m;
    lsched::threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.blockBytes = 4096;
    lsched::threads::LocalityScheduler sched(cfg);
    matmulThreaded(*a_, *b_, c, sched, m);
    EXPECT_LT(c.maxAbsDiff(*ref_), 1e-9 * static_cast<double>(n_));
    EXPECT_EQ(sched.stats().executedThreads, n_ * n_);
}

// Sizes straddle the 3x3 register-block and tile boundaries.
INSTANTIATE_TEST_SUITE_P(Sizes, MatmulTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 17,
                                           24, 33, 48));

TEST(MatmulTraced, TracedResultsMatchNative)
{
    const std::size_t n = 24;
    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    Matrix c_native(n, n);
    NativeModel nm;
    matmulTransposed(a, b, c_native, nm);

    lsched::cachesim::Hierarchy h(
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(), 64)
            .caches);
    SimModel sm(h);
    Matrix c_traced(n, n);
    matmulTransposed(a, b, c_traced, sm);
    EXPECT_EQ(c_traced.maxAbsDiff(c_native), 0.0);
    EXPECT_GT(h.dataRefs(), 2 * n * n * n);
}

TEST(MatmulTraced, InterchangedReferenceCountsMatchModel)
{
    // Per paper Section 4.2: the untiled interchanged inner iteration
    // performs 2 loads + 1 store and 5 instructions per madd.
    const std::size_t n = 16;
    Matrix a(n, n), b(n, n), c(n, n);
    randomize(a, 1);
    randomize(b, 2);
    lsched::cachesim::Hierarchy h(
        lsched::machine::powerIndigo2R8000().caches);
    SimModel sm(h);
    matmulInterchanged(a, b, c, sm);
    const std::uint64_t madds = n * n * n;
    // zero: n^2 stores; B: n^2 loads; inner: 3 per madd.
    EXPECT_EQ(h.dataRefs(), 3 * madds + 2 * n * n);
    EXPECT_GT(h.ifetches(), 5 * madds);
    EXPECT_LT(h.ifetches(), 6 * madds + 10 * n * n);
}

TEST(MatmulTraced, ThreadedUsesExpectedBinCount)
{
    // Paper Section 4.2 (scaled): with block = L2/2 the threads must
    // spread over roughly (2 * matrix_bytes / L2)^2 bins.
    const std::size_t n = 64; // 32 KB per matrix
    Matrix a(n, n), b(n, n), c(n, n);
    randomize(a, 1);
    randomize(b, 2);
    const auto machine =
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(),
                                128); // L2 = 16 KB
    lsched::threads::SchedulerConfig cfg;
    cfg.dims = 2;
    cfg.cacheBytes = machine.l2Size();
    cfg.blockBytes = machine.l2Size() / 2; // 8 KB
    lsched::threads::LocalityScheduler sched(cfg);
    NativeModel m;
    matmulThreaded(a, b, c, sched, m);
    // 32 KB of columns per matrix / 8 KB blocks = 4 blocks per axis,
    // 16 bins (allow one extra per axis for allocator offsets).
    EXPECT_GE(sched.binCount(), 16u);
    EXPECT_LE(sched.binCount(), 25u);
}

} // namespace
