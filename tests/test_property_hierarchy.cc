/**
 * @file Property tests of cross-level hierarchy invariants over
 * randomized reference streams and geometries.
 */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "support/prng.hh"

namespace
{

using namespace lsched::cachesim;

struct HierarchyCase
{
    std::uint64_t seed;
    std::uint64_t l1Bytes;
    std::uint64_t l2Bytes;
    unsigned l1Assoc;
    unsigned l2Assoc;
    WritePolicy l1Write;
};

class HierarchyProperty
    : public ::testing::TestWithParam<HierarchyCase>
{
  protected:
    HierarchyConfig
    config() const
    {
        const HierarchyCase &hc = GetParam();
        HierarchyConfig c;
        c.l1i = {"L1I", hc.l1Bytes, 32, hc.l1Assoc};
        c.l1d = {"L1D", hc.l1Bytes, 32, hc.l1Assoc};
        c.l1d.writePolicy = hc.l1Write;
        c.l2 = {"L2", hc.l2Bytes, 128, hc.l2Assoc};
        return c;
    }
};

TEST_P(HierarchyProperty, L2TrafficEqualsL1MissesPlusWriteThroughs)
{
    const HierarchyCase &hc = GetParam();
    Hierarchy h(config());
    lsched::Prng prng(hc.seed);
    std::uint64_t stores = 0;
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t addr =
            prng.nextBelow(4 * hc.l2Bytes) & ~7ull;
        const std::uint64_t kind = prng.nextBelow(10);
        if (kind < 6) {
            h.load(addr, 8);
        } else if (kind < 9) {
            h.store(addr, 8);
            ++stores;
        } else {
            h.ifetch(addr, 4);
        }
    }
    const bool wt =
        hc.l1Write == WritePolicy::WriteThroughNoAllocate;
    const std::uint64_t l1_misses =
        h.l1iStats().misses + h.l1dStats().misses;
    if (!wt) {
        // Write-back: every L2 access is exactly one L1 miss.
        EXPECT_EQ(h.l2Stats().accesses, l1_misses);
    } else {
        // Write-through: every store reaches L2 once (on a hit it is
        // the propagated write, on a miss it replaces the fetch), and
        // every non-store miss fetches. The aggregate stats cannot
        // split store misses out, so bound the traffic:
        //   lower bound: all stores (each reaches L2) plus I-misses;
        //   upper bound: all stores plus all misses.
        EXPECT_GE(h.l2Stats().accesses,
                  stores + h.l1iStats().misses);
        EXPECT_LE(h.l2Stats().accesses, stores + l1_misses);
    }
}

TEST_P(HierarchyProperty, ClassesPartitionMissesAtL2)
{
    const HierarchyCase &hc = GetParam();
    Hierarchy h(config());
    lsched::Prng prng(hc.seed ^ 0xabcdef);
    for (int i = 0; i < 50000; ++i)
        h.load(prng.nextBelow(8 * hc.l2Bytes) & ~7ull, 8);
    const auto &l2 = h.l2Stats();
    EXPECT_EQ(l2.compulsoryMisses + l2.capacityMisses +
                  l2.conflictMisses,
              l2.misses);
    EXPECT_LE(l2.misses, l2.accesses);
}

TEST_P(HierarchyProperty, RepeatedRunIsDeterministic)
{
    auto run = [&] {
        Hierarchy h(config());
        lsched::Prng prng(99);
        for (int i = 0; i < 20000; ++i) {
            const std::uint64_t addr = prng.nextBelow(1 << 20) & ~7ull;
            if (i % 3)
                h.load(addr, 8);
            else
                h.store(addr, 8);
        }
        return std::make_tuple(h.l1dStats().misses, h.l2Stats().misses,
                               h.l2Stats().capacityMisses,
                               h.l2Stats().writebacks);
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HierarchyProperty,
    ::testing::Values(
        HierarchyCase{1, 1024, 8192, 1, 4,
                      WritePolicy::WriteBackAllocate},
        HierarchyCase{2, 2048, 16384, 2, 2,
                      WritePolicy::WriteBackAllocate},
        HierarchyCase{3, 1024, 32768, 1, 8,
                      WritePolicy::WriteBackAllocate},
        HierarchyCase{4, 4096, 65536, 4, 4,
                      WritePolicy::WriteBackAllocate},
        HierarchyCase{5, 1024, 8192, 1, 4,
                      WritePolicy::WriteThroughNoAllocate},
        HierarchyCase{6, 2048, 32768, 2, 4,
                      WritePolicy::WriteThroughNoAllocate}));

} // namespace
