/** @file Unit tests for the Fortran-callable bindings (by-reference
 *  arguments, trailing-underscore names), exercised the way a Fortran
 *  compiler would emit the calls. */

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "threads/c_api.hh"

namespace
{

std::vector<double> g_results;

/** A Fortran-style subroutine: both arguments by reference. */
void
scaleElement(void *x_ref, void *factor_ref)
{
    const double x = *static_cast<double *>(x_ref);
    const double factor = *static_cast<double *>(factor_ref);
    g_results.push_back(x * factor);
}

class FortranApiTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_results.clear();
        th_default_scheduler().clear();
        const long zero = 0;
        th_init_(&zero, &zero);
    }
};

TEST_F(FortranApiTest, InitForkRunRoundTrip)
{
    // The Fortran idiom: hints are array elements passed by
    // reference — their addresses ARE the hints.
    static double array[64];
    static double factor = 2.0;
    for (int i = 0; i < 64; ++i)
        array[i] = i;
    for (int i = 0; i < 64; ++i) {
        th_fork_(&scaleElement, &array[i], &factor, &array[i],
                 nullptr, nullptr);
    }
    const int keep = 0;
    th_run_(&keep);
    ASSERT_EQ(g_results.size(), 64u);
    // All hints fall in one block -> fork order preserved.
    for (int i = 0; i < 64; ++i)
        EXPECT_DOUBLE_EQ(g_results[static_cast<std::size_t>(i)],
                         2.0 * i);
}

TEST_F(FortranApiTest, InitSetsSizesByReference)
{
    const long blocksize = 8192;
    const long hashsize = 64;
    th_init_(&blocksize, &hashsize);
    const auto &cfg = th_default_scheduler().config();
    EXPECT_EQ(cfg.blockBytes, 8192u);
    EXPECT_EQ(cfg.hashBuckets, 64u);
}

TEST_F(FortranApiTest, KeepByReferenceReRuns)
{
    static double x = 3.0;
    static double f = 4.0;
    th_fork_(&scaleElement, &x, &f, &x, nullptr, nullptr);
    const int keep = 1;
    th_run_(&keep);
    th_run_(&keep);
    const int drop = 0;
    th_run_(&drop);
    EXPECT_EQ(g_results.size(), 3u);
    EXPECT_EQ(th_default_scheduler().pendingThreads(), 0u);
}

TEST_F(FortranApiTest, SetPlacementAndBackendByNumericKind)
{
    // Fortran passes INTEGER kinds by reference; out-of-range values
    // are recorded errors, not aborts.
    const int roundrobin = 1, serial = 0, blockhash = 0, pooled = 1;
    th_set_placement_(&roundrobin);
    EXPECT_EQ(th_stats().placement, 1);
    th_set_backend_(&serial);
    EXPECT_EQ(th_stats().backend, 0);

    th_clear_error();
    const int bogus = 7;
    th_set_placement_(&bogus);
    EXPECT_NE(th_last_error(), nullptr);
    th_clear_error();
    th_set_backend_(&bogus);
    EXPECT_NE(th_last_error(), nullptr);
    th_clear_error();

    th_set_placement_(&blockhash);
    th_set_backend_(&pooled);
    EXPECT_EQ(th_stats().placement, 0);
    EXPECT_EQ(th_stats().backend, 1);
}

std::vector<double> g_streamResults;

void
recordStream(void *x_ref, void *)
{
    // g_results is not thread-safe; the stream test uses one drain
    // worker and checks only the count on its own vector.
    static std::mutex mutex;
    std::lock_guard<std::mutex> lock(mutex);
    g_streamResults.push_back(*static_cast<double *>(x_ref));
}

TEST_F(FortranApiTest, StreamSessionByReference)
{
    g_streamResults.clear();
    static double array[128];
    for (int i = 0; i < 128; ++i)
        array[i] = i;

    const int workers = 1;
    th_stream_begin_(&workers);
    for (int i = 0; i < 128; ++i)
        th_fork_(&recordStream, &array[i], nullptr, &array[i], nullptr,
                 nullptr);
    long long executed = 0;
    th_stream_end_(&executed);
    EXPECT_EQ(executed, 128);
    EXPECT_EQ(g_streamResults.size(), 128u);

    // Closing again is an error reported by value, not an abort.
    th_clear_error();
    th_stream_end_(&executed);
    EXPECT_EQ(executed, -1);
    EXPECT_NE(th_last_error(), nullptr);
    th_clear_error();
}

TEST_F(FortranApiTest, StatsArrayMirrorsTheStruct)
{
    static double x = 1.0, f = 2.0;
    for (int i = 0; i < 5; ++i)
        th_fork_(&scaleElement, &x, &f, &x, nullptr, nullptr);

    const th_stats_t s = th_stats();
    long long values[40] = {};
    const int count = 40;
    th_stats_(values, &count);
    // Spot-check the mirror against the struct, including an appended
    // field past the original layout (same append-only order).
    EXPECT_EQ(values[0],
              static_cast<long long>(s.pending_threads));
    EXPECT_EQ(values[0], 5);
    EXPECT_EQ(values[2], static_cast<long long>(s.bins));
    EXPECT_EQ(values[9], s.placement);
    EXPECT_EQ(values[10], s.backend);
    EXPECT_EQ(values[15],
              static_cast<long long>(s.faulted_threads));
    EXPECT_EQ(values[17],
              static_cast<long long>(s.stream_forked));
    EXPECT_EQ(values[24],
              static_cast<long long>(s.recover_deadlines));
    EXPECT_EQ(values[33], s.recover_state);

    // A short COUNT caps the fill and touches nothing past it.
    long long partial[4] = {-7, -7, -7, -7};
    const int three = 3;
    th_stats_(partial, &three);
    EXPECT_EQ(partial[0], 5);
    EXPECT_EQ(partial[3], -7);

    const int keep = 0;
    th_run_(&keep);
}

TEST_F(FortranApiTest, MetricArrayMirrorsTheNamedSurface)
{
    static double x = 1.0, f = 2.0;
    for (int i = 0; i < 5; ++i)
        th_fork_(&scaleElement, &x, &f, &x, nullptr, nullptr);
    const int keep = 0;
    th_run_(&keep);

    // Numeric-only mirror: COUNT matches the C side, and each VALUE
    // is the metric at the same index in th_metric_name order.
    int count = 0;
    th_metric_count_(&count);
    ASSERT_EQ(count, th_metric_count());
    ASSERT_GT(count, 0);
    for (int i = 0; i < count; i += 7) {
        char name[160];
        ASSERT_GE(th_metric_name(i, name, sizeof(name)), 0);
        unsigned long long fromName = 0;
        ASSERT_EQ(th_metric_get(name, &fromName), 0) << name;
        long long fromIndex = -1;
        th_metric_value_(&i, &fromIndex);
        EXPECT_EQ(fromIndex, static_cast<long long>(fromName))
            << name;
    }

    // Out-of-range and NULL inputs are inert, not fatal.
    long long value = 0;
    th_metric_value_(&count, &value);
    EXPECT_EQ(value, -1);
    th_metric_value_(nullptr, &value);
    EXPECT_EQ(value, -1);
    th_metric_count_(nullptr);
}

TEST_F(FortranApiTest, MixedCAndFortranCallsShareScheduler)
{
    static double x = 1.0, f = 5.0;
    th_fork(&scaleElement, &x, &f, &x, nullptr, nullptr); // C
    th_fork_(&scaleElement, &x, &f, &x, nullptr, nullptr); // Fortran
    EXPECT_EQ(th_default_scheduler().pendingThreads(), 2u);
    const int keep = 0;
    th_run_(&keep);
    EXPECT_EQ(g_results.size(), 2u);
}

} // namespace
