/**
 * @file
 * Tests for adaptive self-tuning placement (threads/adapt.hh): the
 * AdaptiveTuner state machine (PMU regime classification, bad-set
 * hysteresis, dwell-only probe/revert), the AdaptivePlacement wrapper
 * end-to-end through LocalityScheduler::pollAdaptivePlacement(), the
 * adapt.* config keys, the reconfigure-while-streaming guard, and the
 * th_stats C/Fortran ABI extension.
 *
 * Everything here must stay clean under LSCHED_SANITIZE=thread — no
 * death tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>

#include "obs/profile.hh"
#include "support/error.hh"
#include "threads/adapt.hh"
#include "threads/c_api.hh"
#include "threads/config_keys.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched;
using namespace lsched::threads;

AdaptTunerConfig
tunerConfig(unsigned epochs = 1, unsigned hold = 0)
{
    AdaptTunerConfig t;
    t.targetMiss = 0.05;
    t.highMiss = 0.10;
    t.epochs = epochs;
    t.hold = hold;
    t.minBlock = 4096;
    t.maxBlock = 1 << 20;
    t.minRefs = 100;
    t.dwellImprove = 0.05;
    return t;
}

/** A PMU epoch with the given miss rate over plenty of traffic. */
AdaptSample
pmuEpoch(double missRate, std::uint64_t refs = 100000)
{
    AdaptSample s;
    s.samples = 1;
    s.pmuSamples = 1;
    s.llcRefs = refs;
    s.llcMisses = static_cast<std::uint64_t>(
        static_cast<double>(refs) * missRate);
    s.dwellNs = 1000;
    s.threads = 1;
    return s;
}

/** A dwell-only epoch (no hardware counters). */
AdaptSample
dwellEpoch(std::uint64_t dwellNs, std::uint64_t threads = 1)
{
    AdaptSample s;
    s.samples = 1;
    s.dwellNs = dwellNs;
    s.threads = threads;
    return s;
}

// ---------------------------------------------------------------------
// AdaptiveTuner unit tests (profiler-free, fully deterministic).
// ---------------------------------------------------------------------

TEST(AdaptTuner, CapacityRegimeHalvesBlock)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    EXPECT_EQ(tuner.regime(), AdaptRegime::Warmup);
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_EQ(tuner.regime(), AdaptRegime::Capacity);
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    EXPECT_EQ(tuner.shrinks(), 1u);
    EXPECT_EQ(tuner.retunes(), 1u);
}

TEST(AdaptTuner, FloorRegimeGrowsBlock)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 14, 0, 0});
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.01)));
    EXPECT_EQ(tuner.regime(), AdaptRegime::Floor);
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    EXPECT_EQ(tuner.grows(), 1u);
}

TEST(AdaptTuner, NeutralRegimeHolds)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(tuner.observe(pmuEpoch(0.07)));
    EXPECT_EQ(tuner.regime(), AdaptRegime::Neutral);
    EXPECT_EQ(tuner.params().blockBytes, 1u << 16);
    EXPECT_EQ(tuner.retunes(), 0u);
}

TEST(AdaptTuner, EpochsThresholdDelaysReaction)
{
    AdaptiveTuner tuner(tunerConfig(/*epochs=*/3),
                        PlacementKind::BlockHash, {1 << 16, 0, 0});
    EXPECT_FALSE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_FALSE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
}

TEST(AdaptTuner, LowTrafficEpochsAreIgnored)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    // Miss rate is terrible but refs are below adapt.min_refs.
    EXPECT_FALSE(tuner.observe(pmuEpoch(0.9, /*refs=*/10)));
    EXPECT_EQ(tuner.regime(), AdaptRegime::Warmup);
    EXPECT_EQ(tuner.params().blockBytes, 1u << 16);
    EXPECT_EQ(tuner.observations(), 1u);
}

TEST(AdaptTuner, HoldSwallowsEpochsAfterRetune)
{
    AdaptiveTuner tuner(tunerConfig(/*epochs=*/1, /*hold=*/2),
                        PlacementKind::BlockHash, {1 << 16, 0, 0});
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5))); // -> 32 KiB, hold 2
    EXPECT_FALSE(tuner.observe(pmuEpoch(0.5))); // swallowed
    EXPECT_FALSE(tuner.observe(pmuEpoch(0.5))); // swallowed
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5))); // reacts again
    EXPECT_EQ(tuner.params().blockBytes, 1u << 14);
}

TEST(AdaptTuner, BadSetPreventsOscillation)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    // 64 KiB overflows: shrink to 32 KiB and mark 64 KiB bad.
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    // Now the workload sits at the compulsory floor for many epochs;
    // growing back into the known-bad 64 KiB must never happen.
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(tuner.observe(pmuEpoch(0.01)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    EXPECT_EQ(tuner.retunes(), 1u);
    EXPECT_EQ(tuner.grows(), 0u);
}

TEST(AdaptTuner, ShrinkStopsAtMinBlock)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {4096, 0, 0});
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(tuner.observe(pmuEpoch(0.9)));
    EXPECT_EQ(tuner.params().blockBytes, 4096u);
}

TEST(AdaptTuner, GrowStopsAtMaxBlock)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 20, 0, 0});
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(tuner.observe(pmuEpoch(0.01)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 20);
}

TEST(AdaptTuner, RoundRobinBaseDoublesBins)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::RoundRobin,
                        {0, 0, 64});
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_EQ(tuner.params().roundRobinBins, 128u);
    // Floor epochs would halve the bins, but 64 is marked bad.
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(tuner.observe(pmuEpoch(0.01)));
    EXPECT_EQ(tuner.params().roundRobinBins, 128u);
}

TEST(AdaptTuner, HierarchicalFanPreservesSuperBinSpan)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::Hierarchical,
                        {1 << 16, 2, 0});
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    // Block halved, fan doubled: the super-bin byte span is invariant.
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    EXPECT_EQ(tuner.params().superBinFan, 4u);
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 14);
    EXPECT_EQ(tuner.params().superBinFan, 8u);
}

TEST(AdaptTuner, DwellProbeKeptWhenItImproves)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    // One stable dwell epoch, then the tuner probes a shrink.
    EXPECT_TRUE(tuner.observe(dwellEpoch(1000)));
    EXPECT_EQ(tuner.regime(), AdaptRegime::Probing);
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    // The probe epoch runs 20% faster: kept.
    EXPECT_FALSE(tuner.observe(dwellEpoch(800)));
    EXPECT_EQ(tuner.regime(), AdaptRegime::Neutral);
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    EXPECT_EQ(tuner.reverts(), 0u);
}

TEST(AdaptTuner, DwellProbeRevertedWhenItDoesNot)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    EXPECT_TRUE(tuner.observe(dwellEpoch(1000)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 15);
    // The probe epoch is slower: roll back and mark 32 KiB bad.
    EXPECT_TRUE(tuner.observe(dwellEpoch(2000)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 16);
    EXPECT_EQ(tuner.reverts(), 1u);
    // Later stable windows must never probe the bad size again.
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(tuner.observe(dwellEpoch(1000)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 16);
    EXPECT_EQ(tuner.reverts(), 1u);
}

TEST(AdaptTuner, PmuArrivalFinalizesDwellProbe)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    EXPECT_TRUE(tuner.observe(dwellEpoch(1000))); // probe to 32 KiB
    // Counters come online mid-probe: the probed size stays and miss
    // rates take over (here: capacity, shrinking further).
    EXPECT_TRUE(tuner.observe(pmuEpoch(0.5)));
    EXPECT_EQ(tuner.params().blockBytes, 1u << 14);
}

TEST(AdaptTuner, AllZeroDeltaIsNotAnObservation)
{
    AdaptiveTuner tuner(tunerConfig(), PlacementKind::BlockHash,
                        {1 << 16, 0, 0});
    EXPECT_FALSE(tuner.observe(AdaptSample{}));
    EXPECT_EQ(tuner.observations(), 0u);
}

TEST(AdaptTuner, RegimeNames)
{
    EXPECT_STREQ(adaptRegimeName(AdaptRegime::Warmup), "warmup");
    EXPECT_STREQ(adaptRegimeName(AdaptRegime::Floor), "floor");
    EXPECT_STREQ(adaptRegimeName(AdaptRegime::Neutral), "neutral");
    EXPECT_STREQ(adaptRegimeName(AdaptRegime::Capacity), "capacity");
    EXPECT_STREQ(adaptRegimeName(AdaptRegime::Probing), "probing");
    EXPECT_STREQ(placementName(PlacementKind::Adaptive), "adaptive");
}

// ---------------------------------------------------------------------
// AdaptivePlacement + scheduler integration.
// ---------------------------------------------------------------------

/** Reset the global profiler around every integration test. */
class AdaptSchedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::Profiler::global().setEnabled(false);
        obs::Profiler::global().reset();
    }

    void
    TearDown() override
    {
        obs::Profiler::global().setEnabled(false);
        obs::Profiler::global().forcePmuUnavailable(false);
        obs::Profiler::global().reset();
    }

    static SchedulerConfig
    adaptiveConfig()
    {
        SchedulerConfig cfg;
        cfg.dims = 1;
        cfg.cacheBytes = 1 << 20;
        cfg.blockBytes = 1 << 16;
        cfg.placement = PlacementKind::Adaptive;
        cfg.adaptBase = PlacementKind::BlockHash;
        cfg.adaptEpochs = 1;
        cfg.adaptHold = 0;
        cfg.adaptMinRefs = 100;
        cfg.adaptMinBlock = 4096;
        return cfg;
    }
};

TEST_F(AdaptSchedTest, SnapshotInactiveForNonAdaptivePlacements)
{
    SchedulerConfig cfg;
    cfg.dims = 1;
    LocalityScheduler sched(cfg);
    const SchedulerStats s = sched.stats();
    EXPECT_FALSE(s.adapt.active);
    EXPECT_EQ(s.adapt.retunes, 0u);
    EXPECT_FALSE(sched.pollAdaptivePlacement());
}

TEST_F(AdaptSchedTest, SnapshotReportsInitialParams)
{
    LocalityScheduler sched(adaptiveConfig());
    const SchedulerStats s = sched.stats();
    EXPECT_TRUE(s.adapt.active);
    EXPECT_EQ(s.adapt.blockBytes, 1u << 16);
    EXPECT_EQ(s.adapt.regime, AdaptRegime::Warmup);
}

TEST_F(AdaptSchedTest, AdaptBaseAdaptiveIsRejected)
{
    SchedulerConfig cfg = adaptiveConfig();
    cfg.adaptBase = PlacementKind::Adaptive;
    EXPECT_THROW(LocalityScheduler sched(cfg), ConfigError);
}

TEST_F(AdaptSchedTest, InvertedMissThresholdsAreRejected)
{
    SchedulerConfig cfg = adaptiveConfig();
    cfg.adaptTargetMiss = 0.2;
    cfg.adaptHighMiss = 0.1;
    EXPECT_THROW(LocalityScheduler sched(cfg), ConfigError);
}

TEST_F(AdaptSchedTest, PollRetunesFromSyntheticPmuSamples)
{
    if (!obs::kTraceCompiled)
        GTEST_SKIP() << "profiler compiled out";
    LocalityScheduler sched(adaptiveConfig());
    ASSERT_TRUE(obs::Profiler::global().setEnabled(true));
    // One capacity-dominated epoch: 50% miss rate over real traffic.
    obs::Profiler::global().recordSample(
        /*binId=*/1, obs::kProfileNoSuperBin, /*worker=*/0,
        /*threads=*/4, /*dwellNs=*/1000, /*instructions=*/0,
        /*cycles=*/0, /*llcRefs=*/100000, /*llcMisses=*/50000,
        /*pmuValid=*/true);
    EXPECT_TRUE(sched.pollAdaptivePlacement());
    const SchedulerStats s = sched.stats();
    EXPECT_EQ(s.adapt.blockBytes, 1u << 15);
    EXPECT_EQ(s.adapt.regime, AdaptRegime::Capacity);
    EXPECT_EQ(s.adapt.retunes, 1u);
    EXPECT_EQ(s.adapt.shrinks, 1u);
    // Nothing new since: the poll is idempotent.
    EXPECT_FALSE(sched.pollAdaptivePlacement());
}

TEST_F(AdaptSchedTest, DwellOnlyDegradationStillTunes)
{
    if (!obs::kTraceCompiled)
        GTEST_SKIP() << "profiler compiled out";
    LocalityScheduler sched(adaptiveConfig());
    // Force the degraded path: PMU reads unavailable, as in an
    // unprivileged container.
    obs::Profiler::global().forcePmuUnavailable(true);
    ASSERT_TRUE(obs::Profiler::global().setEnabled(true));
    obs::Profiler::global().recordSample(
        1, obs::kProfileNoSuperBin, 0, /*threads=*/4,
        /*dwellNs=*/100000, 0, 0, /*llcRefs=*/0, /*llcMisses=*/0,
        /*pmuValid=*/false);
    // The dwell path probes a shrink off the stable window.
    EXPECT_TRUE(sched.pollAdaptivePlacement());
    SchedulerStats s = sched.stats();
    EXPECT_EQ(s.adapt.regime, AdaptRegime::Probing);
    EXPECT_EQ(s.adapt.blockBytes, 1u << 15);
    // The probe epoch is slower: the tuner must roll back.
    obs::Profiler::global().recordSample(
        1, obs::kProfileNoSuperBin, 0, 4, /*dwellNs=*/400000, 0, 0, 0,
        0, false);
    EXPECT_TRUE(sched.pollAdaptivePlacement());
    s = sched.stats();
    EXPECT_EQ(s.adapt.blockBytes, 1u << 16);
    EXPECT_EQ(s.adapt.reverts, 1u);
}

TEST_F(AdaptSchedTest, RetuneKeepsExactlyOnceAcrossTours)
{
    if (!obs::kTraceCompiled)
        GTEST_SKIP() << "profiler compiled out";
    LocalityScheduler sched(adaptiveConfig());
    static std::atomic<std::uint64_t> ran{0};
    ran.store(0);
    const auto tour = [&sched] {
        for (std::uint64_t i = 0; i < 64; ++i) {
            sched.fork(
                [](void *, void *) {
                    ran.fetch_add(1, std::memory_order_relaxed);
                },
                nullptr, nullptr,
                static_cast<Hint>(i) * (1u << 12));
        }
        return sched.run();
    };
    std::uint64_t executed = tour();
    // Feed a capacity epoch between tours and retune. The profiler
    // is enabled only around the synthetic sample so the tours' own
    // live dwell samples cannot trigger extra dwell-path probes.
    ASSERT_TRUE(obs::Profiler::global().setEnabled(true));
    obs::Profiler::global().recordSample(
        1, obs::kProfileNoSuperBin, 0, 4, 1000, 0, 0, 100000, 50000,
        true);
    EXPECT_TRUE(sched.pollAdaptivePlacement());
    obs::Profiler::global().setEnabled(false);
    executed += tour();
    // Every forked thread ran exactly once across the retune.
    EXPECT_EQ(executed, 128u);
    EXPECT_EQ(ran.load(), 128u);
    EXPECT_EQ(sched.stats().adapt.blockBytes, 1u << 15);
}

TEST_F(AdaptSchedTest, StreamingWithAdaptivePlacementDrains)
{
    SchedulerConfig cfg = adaptiveConfig();
    cfg.backend = BackendKind::Pooled;
    cfg.streamSealThreshold = 8;
    LocalityScheduler sched(cfg);
    static std::atomic<std::uint64_t> ran{0};
    ran.store(0);
    const std::uint64_t executed = sched.runStream(
        /*workers=*/2, /*producers=*/2, [&](unsigned) {
            for (std::uint64_t i = 0; i < 200; ++i) {
                sched.fork(
                    [](void *, void *) {
                        ran.fetch_add(1,
                                      std::memory_order_relaxed);
                    },
                    nullptr, nullptr,
                    static_cast<Hint>(i) * (1u << 12));
            }
        });
    EXPECT_EQ(executed, 400u);
    EXPECT_EQ(ran.load(), 400u);
}

// ---------------------------------------------------------------------
// Reconfigure safety: placement geometry is frozen while streaming.
// ---------------------------------------------------------------------

TEST_F(AdaptSchedTest, ReconfigureWhileStreamingThrows)
{
    SchedulerConfig cfg;
    cfg.dims = 1;
    LocalityScheduler sched(cfg);
    sched.streamBegin(1);
    SchedulerConfig next = cfg;
    next.blockBytes = 1 << 14;
    try {
        sched.configure(next);
        FAIL() << "configure() mid-stream must throw";
    } catch (const UsageError &e) {
        EXPECT_NE(std::string(e.what()).find("stream"),
                  std::string::npos)
            << "error should name the open stream: " << e.what();
    }
    sched.streamEnd();
    // After the stream closes the same reconfigure succeeds.
    sched.configure(next);
    EXPECT_EQ(sched.config().blockBytes, 1u << 14);
}

// ---------------------------------------------------------------------
// Config keys + C ABI.
// ---------------------------------------------------------------------

TEST(AdaptConfigKeys, RoundTripEveryAdaptKey)
{
    SchedulerConfig config;
    const struct
    {
        const char *key;
        const char *value;
    } cases[] = {
        {"adapt.base", "hierarchical"},
        {"adapt.target_miss", "0.03"},
        {"adapt.high_miss", "0.2"},
        {"adapt.converge", "1.25"},
        {"adapt.epochs", "3"},
        {"adapt.hold", "6"},
        {"adapt.min_block", "8192"},
        {"adapt.max_block", "262144"},
        {"adapt.min_refs", "2048"},
        {"adapt.dwell_improve", "0.1"},
    };
    for (const auto &c : cases) {
        std::string error;
        ASSERT_TRUE(applyConfigKey(config, c.key, c.value, &error))
            << c.key << ": " << error;
        std::string out;
        ASSERT_TRUE(configKeyValue(config, c.key, &out)) << c.key;
        EXPECT_EQ(out, c.value) << c.key;
        // Re-applying the read-back value must be lossless.
        ASSERT_TRUE(applyConfigKey(config, c.key, out, &error))
            << c.key << ": " << error;
    }
    EXPECT_EQ(config.adaptBase, PlacementKind::Hierarchical);
    EXPECT_DOUBLE_EQ(config.adaptTargetMiss, 0.03);
    EXPECT_EQ(config.adaptEpochs, 3u);
}

TEST(AdaptConfigKeys, EveryAdaptKeyIsEnumerated)
{
    const std::vector<std::string> &keys = configKeys();
    unsigned adapt = 0;
    SchedulerConfig config;
    for (const std::string &key : keys) {
        if (key.rfind("adapt.", 0) == 0)
            ++adapt;
        // Every enumerated key must be readable.
        std::string out;
        EXPECT_TRUE(configKeyValue(config, key, &out)) << key;
    }
    EXPECT_EQ(adapt, 10u);
}

TEST(AdaptConfigKeys, RejectsBadValues)
{
    SchedulerConfig config;
    std::string error;
    // adapt.base may not itself be adaptive.
    EXPECT_FALSE(
        applyConfigKey(config, "adapt.base", "adaptive", &error));
    EXPECT_FALSE(
        applyConfigKey(config, "adapt.target_miss", "1.5", &error));
    EXPECT_FALSE(
        applyConfigKey(config, "adapt.target_miss", "-0.1", &error));
    EXPECT_FALSE(
        applyConfigKey(config, "adapt.converge", "0.5", &error));
    EXPECT_FALSE(applyConfigKey(config, "adapt.epochs", "0", &error));
    EXPECT_FALSE(
        applyConfigKey(config, "adapt.min_block", "0", &error));
    EXPECT_FALSE(
        applyConfigKey(config, "adapt.dwell_improve", "nope", &error));
    // Placement accepts the new name.
    EXPECT_TRUE(
        applyConfigKey(config, "placement", "adaptive", &error));
    EXPECT_EQ(config.placement, PlacementKind::Adaptive);
}

TEST(AdaptCApi, ConfigureAndStatsRoundTrip)
{
    ASSERT_EQ(th_configure("placement", "adaptive"), 0);
    ASSERT_EQ(th_configure("adapt.base", "blockhash"), 0);
    ASSERT_EQ(th_configure("adapt.target_miss", "0.04"), 0);

    char buf[64];
    ASSERT_GT(th_config_get("placement", buf, sizeof(buf)), 0);
    EXPECT_STREQ(buf, "adaptive");
    ASSERT_GT(th_config_get("adapt.target_miss", buf, sizeof(buf)), 0);
    EXPECT_STREQ(buf, "0.04");
    ASSERT_GT(th_config_get("adapt.base", buf, sizeof(buf)), 0);
    EXPECT_STREQ(buf, "blockhash");

    const th_stats_t s = th_stats();
    EXPECT_EQ(s.placement,
              static_cast<int>(PlacementKind::Adaptive));
    EXPECT_GT(s.adapt_block_bytes, 0ull);
    EXPECT_EQ(s.adapt_retunes, 0ull);
    EXPECT_EQ(s.adapt_regime, 0); // warmup

    // adapt.base=adaptive must be rejected at the C boundary too.
    EXPECT_EQ(th_configure("adapt.base", "adaptive"), -1);

    // Mid-stream reconfiguration is refused with an explanation.
    th_stream_begin(1);
    EXPECT_EQ(th_configure("block_bytes", "16384"), -1);
    const char *err = th_last_error();
    ASSERT_NE(err, nullptr);
    EXPECT_NE(std::string(err).find("stream"), std::string::npos);
    EXPECT_GE(th_stream_end(), 0);

    ASSERT_EQ(th_configure("placement", "blockhash"), 0);
}

TEST(AdaptCApi, FortranPlacementSelectorKnowsAdaptive)
{
    const int adaptive = 3;
    th_set_placement_(&adaptive);
    const th_stats_t s = th_stats();
    EXPECT_EQ(s.placement, 3);
    const int bad = 4;
    th_set_placement_(&bad); // out of range: recorded, not applied
    EXPECT_EQ(th_stats().placement, 3);
    const int blockhash = 0;
    th_set_placement_(&blockhash);
    EXPECT_EQ(th_stats().placement, 0);
}

} // namespace
