/** @file Unit tests for the two-level cache hierarchy. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"

namespace
{

using lsched::cachesim::Hierarchy;
using lsched::cachesim::HierarchyConfig;

HierarchyConfig
tinyConfig()
{
    HierarchyConfig c;
    c.l1i = {"L1I", 1024, 32, 1};
    c.l1d = {"L1D", 1024, 32, 1};
    c.l2 = {"L2", 8192, 128, 4};
    return c;
}

TEST(Hierarchy, LoadsCountAsDataRefs)
{
    Hierarchy h(tinyConfig());
    h.load(0, 8);
    h.store(8, 8);
    h.ifetch(0x1000, 4);
    EXPECT_EQ(h.dataRefs(), 2u);
    EXPECT_EQ(h.ifetches(), 1u);
}

TEST(Hierarchy, L1MissGoesToL2)
{
    Hierarchy h(tinyConfig());
    h.load(0, 8);
    EXPECT_EQ(h.l1dStats().misses, 1u);
    EXPECT_EQ(h.l2Stats().accesses, 1u);
    EXPECT_EQ(h.l2Stats().misses, 1u);
    // Second touch hits L1; L2 sees nothing new.
    h.load(0, 8);
    EXPECT_EQ(h.l1dStats().misses, 1u);
    EXPECT_EQ(h.l2Stats().accesses, 1u);
}

TEST(Hierarchy, L1HitNeverReachesL2)
{
    Hierarchy h(tinyConfig());
    for (int i = 0; i < 100; ++i)
        h.load(64, 8);
    EXPECT_EQ(h.l2Stats().accesses, 1u);
}

TEST(Hierarchy, SameL2LineDifferentL1Lines)
{
    // L1 lines are 32 B, L2 lines 128 B: four adjacent L1 misses map
    // to one L2 line, so only the first L2 access misses.
    Hierarchy h(tinyConfig());
    h.load(0, 8);
    h.load(32, 8);
    h.load(64, 8);
    h.load(96, 8);
    EXPECT_EQ(h.l1dStats().misses, 4u);
    EXPECT_EQ(h.l2Stats().accesses, 4u);
    EXPECT_EQ(h.l2Stats().misses, 1u);
}

TEST(Hierarchy, SplitL1)
{
    Hierarchy h(tinyConfig());
    h.ifetch(0, 4);
    h.load(0, 8);
    EXPECT_EQ(h.l1iStats().misses, 1u);
    EXPECT_EQ(h.l1dStats().misses, 1u);
    // Both miss in L1 but share the L2 line.
    EXPECT_EQ(h.l2Stats().misses, 1u);
}

TEST(Hierarchy, CrossLineAccessTouchesBothLines)
{
    Hierarchy h(tinyConfig());
    h.load(28, 8); // spans L1 lines 0 and 1
    EXPECT_EQ(h.l1dStats().accesses, 2u);
    EXPECT_EQ(h.dataRefs(), 1u);
}

TEST(Hierarchy, CombinedL1Stats)
{
    Hierarchy h(tinyConfig());
    h.ifetch(0, 4);
    h.load(0x4000, 8);
    const auto l1 = h.l1Stats();
    EXPECT_EQ(l1.accesses, 2u);
    EXPECT_EQ(l1.misses, 2u);
}

TEST(Hierarchy, L1MissRateUsesAllRefs)
{
    Hierarchy h(tinyConfig());
    h.load(0, 8);        // miss
    h.load(0, 8);        // hit
    h.ifetch(0x1000, 4); // miss
    h.ifetch(0x1000, 4); // hit
    EXPECT_DOUBLE_EQ(h.l1MissRatePercent(), 50.0);
}

TEST(Hierarchy, CountIFetchesIsAnalytic)
{
    Hierarchy h(tinyConfig());
    h.countIFetches(1000);
    EXPECT_EQ(h.ifetches(), 1000u);
    EXPECT_EQ(h.l1iStats().accesses, 0u);
}

TEST(Hierarchy, DirtyL1VictimUpdatesL2)
{
    Hierarchy h(tinyConfig());
    h.store(0, 8);          // L1D line 0 dirty; L2 line 0 filled
    h.store(1024, 8);       // L1D direct-mapped: evicts line 0 dirty
    EXPECT_EQ(h.l1dStats().writebacks, 1u);
    // The L2 line must now be dirty: evicting it writes back.
    EXPECT_TRUE(h.l2().probeLine(0));
}

TEST(Hierarchy, ResetZeroesEverything)
{
    Hierarchy h(tinyConfig());
    h.load(0, 8);
    h.ifetch(0, 4);
    h.reset();
    EXPECT_EQ(h.dataRefs(), 0u);
    EXPECT_EQ(h.ifetches(), 0u);
    EXPECT_EQ(h.l1dStats().accesses, 0u);
    EXPECT_EQ(h.l2Stats().accesses, 0u);
    EXPECT_TRUE(h.l1d().accessLine(0, false).miss);
}

TEST(Hierarchy, L2ClassificationEnabledByDefault)
{
    Hierarchy h(tinyConfig());
    // Stream more distinct L2 lines than L2 holds (64 lines).
    for (std::uint64_t a = 0; a < 3 * 8192; a += 128)
        h.load(a, 8);
    // Second pass: all capacity misses at L2.
    for (std::uint64_t a = 0; a < 3 * 8192; a += 128)
        h.load(a, 8);
    const auto &l2 = h.l2Stats();
    EXPECT_GT(l2.capacityMisses, 0u);
    EXPECT_EQ(l2.compulsoryMisses, 192u);
    EXPECT_EQ(l2.compulsoryMisses + l2.capacityMisses +
                  l2.conflictMisses,
              l2.misses);
}

} // namespace
