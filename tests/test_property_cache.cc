/**
 * @file Property-based tests of the cache simulator, swept over
 * geometries with parameterized gtest and randomized access streams.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cache.hh"
#include "cachesim/fully_assoc.hh"
#include "support/prng.hh"

namespace
{

using namespace lsched::cachesim;

struct Geometry
{
    std::uint64_t size;
    std::uint64_t line;
    unsigned assoc;
};

class CacheProperty : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheProperty, ClassCountsAlwaysSumToMisses)
{
    const Geometry g = GetParam();
    Cache cache({"c", g.size, g.line, g.assoc}, true);
    lsched::Prng prng(g.size ^ g.assoc);
    const std::uint64_t universe = 4 * g.size / g.line;
    for (int i = 0; i < 30000; ++i)
        cache.accessLine(prng.nextBelow(universe), i % 4 == 0);
    const auto &s = cache.stats();
    EXPECT_EQ(s.accesses, 30000u);
    EXPECT_EQ(s.compulsoryMisses + s.capacityMisses + s.conflictMisses,
              s.misses);
    EXPECT_LE(s.misses, s.accesses);
}

TEST_P(CacheProperty, FullyAssociativeHasNoConflictMisses)
{
    const Geometry g = GetParam();
    Cache cache({"fa", g.size, g.line, 0}, true);
    lsched::Prng prng(g.size + 1);
    for (int i = 0; i < 20000; ++i)
        cache.accessLine(prng.nextBelow(8 * g.size / g.line), false);
    EXPECT_EQ(cache.stats().conflictMisses, 0u);
}

TEST_P(CacheProperty, WorkingSetWithinCacheNeverCapacityMisses)
{
    const Geometry g = GetParam();
    Cache cache({"c", g.size, g.line, g.assoc}, true);
    lsched::Prng prng(7);
    const std::uint64_t lines = g.size / g.line;
    // Random accesses confined to exactly the cache's line count:
    // the fully-associative shadow never evicts, so no miss can be
    // classified as capacity.
    for (int i = 0; i < 20000; ++i)
        cache.accessLine(prng.nextBelow(lines), false);
    EXPECT_EQ(cache.stats().capacityMisses, 0u);
}

TEST_P(CacheProperty, SetAssocNeverBeatsFullyAssocLruOnMisses)
{
    // LRU stack property: a fully-associative LRU cache of equal
    // capacity is an upper bound on hit count... equivalently a lower
    // bound on misses for any same-capacity LRU organization.
    const Geometry g = GetParam();
    Cache real({"c", g.size, g.line, g.assoc}, false);
    FullyAssocLru shadow(g.size / g.line);
    lsched::Prng prng(123);
    std::uint64_t real_misses = 0, shadow_misses = 0;
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t line =
            prng.nextBelow(3 * g.size / g.line);
        real_misses += real.accessLine(line, false).miss;
        shadow_misses += !shadow.access(line);
    }
    EXPECT_GE(real_misses, shadow_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{1024, 32, 2},
                      Geometry{1024, 32, 4}, Geometry{4096, 64, 1},
                      Geometry{4096, 64, 2}, Geometry{4096, 128, 4},
                      Geometry{16384, 128, 4}, Geometry{16384, 32, 8},
                      Geometry{512, 64, 8}, Geometry{2048, 128, 2}));

TEST(CacheStackProperty, LargerFullyAssocCacheNeverMissesMore)
{
    // LRU inclusion: on any trace, misses are non-increasing in
    // capacity.
    lsched::Prng prng(555);
    std::vector<std::uint64_t> trace(50000);
    for (auto &t : trace)
        t = prng.nextBelow(300);

    std::uint64_t last_misses = ~0ull;
    for (std::uint64_t capacity : {16u, 32u, 64u, 128u, 256u, 512u}) {
        FullyAssocLru lru(capacity);
        std::uint64_t misses = 0;
        for (auto t : trace)
            misses += !lru.access(t);
        EXPECT_LE(misses, last_misses)
            << "capacity " << capacity << " violated inclusion";
        last_misses = misses;
    }
}

TEST(CacheStackProperty, SequentialStreamMissesOncePerLine)
{
    for (unsigned assoc : {1u, 2u, 4u}) {
        Cache cache({"c", 4096, 64, assoc}, true);
        for (std::uint64_t rep = 0; rep < 3; ++rep)
            for (std::uint64_t l = 0; l < 32; ++l) // half the cache
                cache.accessLine(l, false);
        EXPECT_EQ(cache.stats().misses, 32u) << "assoc " << assoc;
    }
}

} // namespace
