/** @file Unit and integration tests for the sparse matrix-vector
 *  extension workload (indirect access: the paper's tiling-infeasible
 *  motivating case). */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/machine_config.hh"
#include "workloads/spmv.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

SpmvConfig
smallConfig()
{
    SpmvConfig c;
    c.rows = 512;
    c.cols = 512;
    c.rowNnz = 16;
    c.bandHalfWidth = 32;
    return c;
}

std::vector<double>
makeX(std::size_t n, std::uint64_t seed)
{
    Prng prng(seed);
    std::vector<double> x(n);
    for (double &v : x)
        v = prng.nextDouble(-1.0, 1.0);
    return x;
}

TEST(SpmvMatrix, GeneratorProducesValidCsr)
{
    const CsrMatrix m = makeBandedRandom(smallConfig());
    ASSERT_EQ(m.rowPtr.size(), m.rows + 1);
    EXPECT_EQ(m.rowPtr.front(), 0u);
    EXPECT_EQ(m.rowPtr.back(), m.nnz());
    EXPECT_EQ(m.colIdx.size(), m.values.size());
    EXPECT_EQ(m.bandCentre.size(), m.rows);
    for (std::size_t r = 0; r < m.rows; ++r) {
        EXPECT_LE(m.rowPtr[r], m.rowPtr[r + 1]);
        for (std::uint32_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k)
            ASSERT_LT(m.colIdx[k], m.cols);
        // Columns sorted within the row.
        for (std::uint32_t k = m.rowPtr[r] + 1; k < m.rowPtr[r + 1];
             ++k)
            EXPECT_LE(m.colIdx[k - 1], m.colIdx[k]);
    }
}

TEST(SpmvMatrix, RowsClusterAroundBandCentre)
{
    const SpmvConfig cfg = smallConfig();
    const CsrMatrix m = makeBandedRandom(cfg);
    for (std::size_t r = 0; r < m.rows; ++r) {
        for (std::uint32_t k = m.rowPtr[r]; k < m.rowPtr[r + 1]; ++k) {
            const auto distance =
                m.colIdx[k] > m.bandCentre[r]
                    ? m.colIdx[k] - m.bandCentre[r]
                    : m.bandCentre[r] - m.colIdx[k];
            EXPECT_LE(distance, cfg.bandHalfWidth);
        }
    }
}

TEST(SpmvMatrix, StorageOrderIsShuffled)
{
    const CsrMatrix m = makeBandedRandom(smallConfig());
    // If rows were stored in band order the centres would be sorted;
    // count inversions to confirm shuffling.
    std::size_t inversions = 0;
    for (std::size_t r = 1; r < m.rows; ++r)
        inversions += m.bandCentre[r - 1] > m.bandCentre[r];
    EXPECT_GT(inversions, m.rows / 4);
}

TEST(SpmvMatrix, GeneratorIsDeterministic)
{
    const CsrMatrix a = makeBandedRandom(smallConfig());
    const CsrMatrix b = makeBandedRandom(smallConfig());
    EXPECT_EQ(a.colIdx, b.colIdx);
    EXPECT_EQ(a.values, b.values);
    EXPECT_EQ(a.bandCentre, b.bandCentre);
}

TEST(Spmv, NaturalMatchesReference)
{
    const CsrMatrix m = makeBandedRandom(smallConfig());
    const auto x = makeX(m.cols, 2);
    std::vector<double> y(m.rows, 0.0);
    NativeModel model;
    spmvNatural(m, x, y, model);
    const auto ref = spmvReference(m, x);
    for (std::size_t r = 0; r < m.rows; ++r)
        ASSERT_EQ(y[r], ref[r]) << "row " << r;
}

TEST(Spmv, ThreadedMatchesReferenceBitwise)
{
    // Each row is computed by one thread with the same in-row
    // accumulation order, so results are bitwise identical however
    // the rows are scheduled.
    const CsrMatrix m = makeBandedRandom(smallConfig());
    const auto x = makeX(m.cols, 2);
    std::vector<double> y(m.rows, 0.0);
    NativeModel model;
    threads::SchedulerConfig cfg;
    cfg.blockBytes = 1024;
    threads::LocalityScheduler sched(cfg);
    spmvThreaded(m, x, y, sched, model);
    const auto ref = spmvReference(m, x);
    for (std::size_t r = 0; r < m.rows; ++r)
        ASSERT_EQ(y[r], ref[r]) << "row " << r;
    EXPECT_EQ(sched.stats().executedThreads, m.rows);
}

TEST(SpmvIntegration, LocalitySchedulingCutsL2MissesOnIndirectAccess)
{
    // The headline: with x larger than L2 and shuffled rows, natural
    // order thrashes on x, while band-centre hints reassemble the
    // locality at run time. Tiling could not have done this — the
    // column pattern exists only at run time (paper Section 1).
    SpmvConfig cfg;
    cfg.rows = 16384;
    cfg.cols = 65536; // x = 512 KB vs 64 KB L2
    cfg.rowNnz = 24;
    cfg.bandHalfWidth = 512;
    const CsrMatrix m = makeBandedRandom(cfg);
    const auto x = makeX(m.cols, 5);
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 32);

    const auto natural =
        harness::simulateOn(machine, [&](SimModel &sim) {
            std::vector<double> y(m.rows, 0.0);
            spmvNatural(m, x, y, sim);
        });
    const auto threaded =
        harness::simulateOn(machine, [&](SimModel &sim) {
            std::vector<double> y(m.rows, 0.0);
            threads::SchedulerConfig scfg;
            scfg.dims = 1;
            scfg.cacheBytes = machine.l2Size();
            scfg.blockBytes = machine.l2Size() / 3;
            threads::LocalityScheduler sched(scfg);
            spmvThreaded(m, x, y, sched, sim);
        });

    // x-vector reuse is the only difference; misses must drop
    // substantially and stay capacity-dominated before/after.
    EXPECT_LT(threaded.l2.misses, natural.l2.misses * 7 / 10);
    EXPECT_GT(natural.l2.capacityMisses,
              natural.l2.compulsoryMisses);
}

} // namespace
