/** @file Unit tests for the paper's th_init/th_fork/th_run interface. */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "support/failpoint.hh"
#include "threads/c_api.hh"
#include "threads/config_keys.hh"

namespace
{

std::vector<std::uintptr_t> g_order;

void
record(void *, void *tag)
{
    g_order.push_back(reinterpret_cast<std::uintptr_t>(tag));
}

class CApiTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        g_order.clear();
        th_default_scheduler().clear();
        th_init(0, 0); // paper defaults
    }
};

TEST_F(CApiTest, InitZeroSelectsDefaults)
{
    const auto &cfg = th_default_scheduler().config();
    EXPECT_EQ(cfg.dims, 3u);
    EXPECT_EQ(cfg.blockBytes, cfg.cacheBytes / 3);
    EXPECT_GT(cfg.hashBuckets, 0u);
}

TEST_F(CApiTest, ForkAndRunExecutesAll)
{
    for (std::uintptr_t i = 0; i < 50; ++i) {
        th_fork(&record, nullptr, reinterpret_cast<void *>(i),
                reinterpret_cast<void *>(i * 64), nullptr, nullptr);
    }
    th_run(0);
    EXPECT_EQ(g_order.size(), 50u);
    EXPECT_EQ(th_default_scheduler().pendingThreads(), 0u);
}

std::atomic<std::uint64_t> g_parallelRuns{0};

void
bumpParallel(void *, void *)
{
    g_parallelRuns.fetch_add(1, std::memory_order_relaxed);
}

TEST_F(CApiTest, RunParallelExecutesAllAndFillsPoolStats)
{
    g_parallelRuns.store(0);
    const th_stats_t before = th_stats(); // SetUp retired any old pool
    for (std::uintptr_t i = 0; i < 200; ++i) {
        th_fork(&bumpParallel, nullptr, nullptr,
                reinterpret_cast<void *>(i * 4096), nullptr, nullptr);
    }
    th_run_parallel(2, /*keep=*/1);
    EXPECT_EQ(g_parallelRuns.load(), 200u);
    const th_stats_t warm = th_stats();
    EXPECT_EQ(warm.pool_threads_spawned,
              before.pool_threads_spawned + 1);

    th_run_parallel(2, /*keep=*/0);
    EXPECT_EQ(g_parallelRuns.load(), 400u);
    // Warm tour: the parked helper is reused, not respawned.
    EXPECT_EQ(th_stats().pool_threads_spawned,
              warm.pool_threads_spawned);
    EXPECT_EQ(th_default_scheduler().pendingThreads(), 0u);
}

TEST_F(CApiTest, KeepReRunsSchedule)
{
    th_fork(&record, nullptr, reinterpret_cast<void *>(7), nullptr,
            nullptr, nullptr);
    th_run(1);
    th_run(1);
    th_run(0);
    EXPECT_EQ(g_order,
              (std::vector<std::uintptr_t>{7, 7, 7}));
}

TEST_F(CApiTest, InitChangesBlockSize)
{
    th_init(4096, 128);
    const auto &cfg = th_default_scheduler().config();
    EXPECT_EQ(cfg.blockBytes, 4096u);
    EXPECT_EQ(cfg.hashBuckets, 128u);
}

TEST_F(CApiTest, HintsClusterAsInPaperExample)
{
    // Paper Section 2.4: the 4x4 matrix-multiply example — 16 dot-
    // product threads over 4 "vectors" per matrix, block = 2 vectors,
    // must land in exactly 4 bins of 4 threads each.
    const std::size_t vec_bytes = 1024;
    th_init(2 * vec_bytes, 0);
    // Two synthetic matrices: a at 0x100000, b at 0x200000.
    const std::uintptr_t a = 0x100000, b = 0x200000;
    for (std::uintptr_t i = 0; i < 4; ++i) {
        for (std::uintptr_t j = 0; j < 4; ++j) {
            th_fork(&record, nullptr,
                    reinterpret_cast<void *>(i * 4 + j),
                    reinterpret_cast<void *>(a + i * vec_bytes),
                    reinterpret_cast<void *>(b + j * vec_bytes),
                    nullptr);
        }
    }
    auto &sched = th_default_scheduler();
    EXPECT_EQ(sched.binCount(), 4u);
    const auto occupancy = sched.binOccupancy();
    ASSERT_EQ(occupancy.size(), 4u);
    for (auto c : occupancy)
        EXPECT_EQ(c, 4u);
    th_run(0);
    // Threads of bin 1 (rows 0-1 x cols 0-1) run first, in fork order:
    // t(0,0), t(0,1), t(1,0), t(1,1) = tags 0, 1, 4, 5.
    EXPECT_EQ((std::vector<std::uintptr_t>(g_order.begin(),
                                           g_order.begin() + 4)),
              (std::vector<std::uintptr_t>{0, 1, 4, 5}));
}

TEST_F(CApiTest, StatsReturnsPlainCSnapshot)
{
    th_init(4096, 0);
    // Three threads in each of two far-apart blocks.
    for (std::uintptr_t i = 0; i < 6; ++i) {
        th_fork(&record, nullptr, reinterpret_cast<void *>(i),
                reinterpret_cast<void *>((i % 2) * 0x100000 + 64),
                nullptr, nullptr);
    }
    const th_stats_t before = th_stats();
    EXPECT_EQ(before.pending_threads, 6u);
    EXPECT_EQ(before.bins, 2u);
    EXPECT_EQ(before.occupied_bins, 2u);
    EXPECT_GE(before.max_hash_chain, 1u);
    EXPECT_DOUBLE_EQ(before.threads_per_bin_mean, 3.0);
    EXPECT_DOUBLE_EQ(before.threads_per_bin_min, 3.0);
    EXPECT_DOUBLE_EQ(before.threads_per_bin_max, 3.0);
    EXPECT_DOUBLE_EQ(before.threads_per_bin_stddev, 0.0);

    th_run(0);
    const th_stats_t after = th_stats();
    EXPECT_EQ(after.pending_threads, 0u);
    EXPECT_EQ(after.executed_threads - before.executed_threads, 6u);
    // Empty distribution reports zeros, not infinities.
    EXPECT_EQ(after.occupied_bins, 0u);
    EXPECT_DOUBLE_EQ(after.threads_per_bin_min, 0.0);
    EXPECT_DOUBLE_EQ(after.threads_per_bin_max, 0.0);
}

TEST_F(CApiTest, SymmetricHintsFoldPermutedForksIntoOneBin)
{
    // Paper Section 3.2's symmetric-hint option, driven end to end
    // through th_fork: every permutation of the same three addresses
    // must land in one bin once folding is on — and in six distinct
    // bins when it is off (the global scheduler's config carries
    // through the C boundary).
    auto &sched = th_default_scheduler();
    const auto saved = sched.config();
    auto cfg = saved;
    cfg.symmetricHints = true;
    sched.configure(cfg);

    void *const h[3] = {reinterpret_cast<void *>(0x100000),
                        reinterpret_cast<void *>(0x900000),
                        reinterpret_cast<void *>(0x1100000)};
    const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                             {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
    for (const auto &p : perms)
        th_fork(&record, nullptr, nullptr, h[p[0]], h[p[1]], h[p[2]]);
    const th_stats_t folded = th_stats();
    EXPECT_EQ(folded.pending_threads, 6u);
    EXPECT_EQ(folded.occupied_bins, 1u);
    EXPECT_DOUBLE_EQ(folded.threads_per_bin_max, 6.0);
    th_run(0);
    EXPECT_EQ(g_order.size(), 6u);

    cfg.symmetricHints = false;
    sched.configure(cfg);
    for (const auto &p : perms)
        th_fork(&record, nullptr, nullptr, h[p[0]], h[p[1]], h[p[2]]);
    EXPECT_EQ(th_stats().occupied_bins, 6u);
    th_run(0);

    sched.configure(saved);
}

TEST_F(CApiTest, SetPlacementAndBackendSelectAtRuntime)
{
    const th_stats_t defaults = th_stats();
    EXPECT_EQ(defaults.placement, 0) << "blockhash by default";
    EXPECT_EQ(defaults.backend, 1) << "pooled by default";

    EXPECT_EQ(th_set_placement("roundrobin"), 0);
    EXPECT_EQ(th_stats().placement, 1);
    // Round-robin really is in charge now: identical hints spread.
    for (int i = 0; i < 8; ++i)
        th_fork(&record, nullptr, nullptr,
                reinterpret_cast<void *>(0x100000), nullptr, nullptr);
    EXPECT_EQ(th_stats().occupied_bins, 8u);
    th_run(0);
    EXPECT_EQ(g_order.size(), 8u);

    EXPECT_EQ(th_set_backend("serial"), 0);
    EXPECT_EQ(th_stats().backend, 0);
    EXPECT_EQ(th_set_backend("coldspawn"), 0);
    EXPECT_EQ(th_stats().backend, 2);

    th_clear_error();
    EXPECT_EQ(th_set_placement("bogus"), -1);
    ASSERT_NE(th_last_error(), nullptr);
    th_clear_error();
    EXPECT_EQ(th_set_backend("bogus"), -1);
    ASSERT_NE(th_last_error(), nullptr);
    th_clear_error();
    EXPECT_EQ(th_set_placement(nullptr), -1);
    EXPECT_EQ(th_set_backend(nullptr), -1);
    th_clear_error();

    // Restore the global scheduler for the other fixtures.
    EXPECT_EQ(th_set_placement("blockhash"), 0);
    EXPECT_EQ(th_set_backend("pooled"), 0);
    EXPECT_EQ(th_stats().placement, 0);
    EXPECT_EQ(th_stats().backend, 1);
}

TEST_F(CApiTest, ConfigureRoundTripsEveryKey)
{
    // Every key reads back a value that th_configure accepts and that
    // reproduces itself — the unified surface's round-trip contract,
    // driven through the C boundary.
    for (const std::string &key : lsched::threads::configKeys()) {
        char value[64];
        const int n = th_config_get(key.c_str(), value,
                                    sizeof(value));
        ASSERT_GE(n, 0) << key;
        ASSERT_LT(n, static_cast<int>(sizeof(value))) << key;
        EXPECT_EQ(th_configure(key.c_str(), value), 0)
            << key << "=" << value << ": " << th_last_error();
        char again[64];
        ASSERT_EQ(th_config_get(key.c_str(), again, sizeof(again)), n);
        EXPECT_STREQ(again, value) << key;
    }
}

TEST_F(CApiTest, ConfigureRejectsUnknownKeysAndBadValues)
{
    th_clear_error();
    EXPECT_EQ(th_configure("bogus_knob", "1"), -1);
    ASSERT_NE(th_last_error(), nullptr);
    EXPECT_NE(std::string(th_last_error()).find("bogus_knob"),
              std::string::npos);

    th_clear_error();
    EXPECT_EQ(th_configure("dims", "0"), -1);
    ASSERT_NE(th_last_error(), nullptr);

    th_clear_error();
    EXPECT_EQ(th_configure("tour", "sideways"), -1);
    ASSERT_NE(th_last_error(), nullptr);

    th_clear_error();
    EXPECT_EQ(th_configure(nullptr, "1"), -1);
    EXPECT_EQ(th_configure("dims", nullptr), -1);

    // A rejected value leaves the configuration untouched.
    th_clear_error();
    char dims[16];
    ASSERT_GT(th_config_get("dims", dims, sizeof(dims)), 0);
    EXPECT_EQ(th_configure("dims", "99"), -1);
    char after[16];
    ASSERT_GT(th_config_get("dims", after, sizeof(after)), 0);
    EXPECT_STREQ(after, dims);
    th_clear_error();
}

TEST_F(CApiTest, ConfigGetReportsLengthAndTruncates)
{
    th_clear_error();
    EXPECT_EQ(th_config_get("bogus_knob", nullptr, 0), -1);
    ASSERT_NE(th_last_error(), nullptr);
    th_clear_error();

    ASSERT_EQ(th_configure("placement", "hierarchical"), 0);
    // Full length comes back regardless of the buffer (snprintf-ish),
    // and what fits is NUL-terminated.
    EXPECT_EQ(th_config_get("placement", nullptr, 0), 12);
    char tiny[5];
    EXPECT_EQ(th_config_get("placement", tiny, sizeof(tiny)), 12);
    EXPECT_STREQ(tiny, "hier");
    ASSERT_EQ(th_configure("placement", "blockhash"), 0);
}

TEST_F(CApiTest, ConfigKeyEnumerationMatchesTheTable)
{
    const auto &keys = lsched::threads::configKeys();
    ASSERT_EQ(th_config_keys(), static_cast<int>(keys.size()));
    char buf[128];
    for (int i = 0; i < th_config_keys(); ++i) {
        const int n = th_config_key(i, buf, sizeof(buf));
        ASSERT_GE(n, 0) << "index " << i;
        EXPECT_EQ(std::string(buf), keys[static_cast<std::size_t>(i)]);
        // Every enumerated key is readable.
        char value[128];
        EXPECT_GE(th_config_get(buf, value, sizeof(value)), 0) << buf;
    }
    th_clear_error();
    EXPECT_EQ(th_config_key(-1, buf, sizeof(buf)), -1);
    EXPECT_EQ(th_config_key(th_config_keys(), buf, sizeof(buf)), -1);
    EXPECT_NE(th_last_error(), nullptr);
    // The truncation protocol matches th_config_get: full length
    // returned, copy truncated and NUL-terminated.
    char tiny[3];
    const int full = th_config_key(0, tiny, sizeof(tiny));
    ASSERT_GE(full, 0);
    EXPECT_EQ(full, static_cast<int>(
                        lsched::threads::configKeys()[0].size()));
    EXPECT_EQ(tiny[2], '\0');
}

TEST_F(CApiTest, CamelCaseConfigAliasesReadAndWrite)
{
    // The pre-audit camelCase spellings stay live as aliases of the
    // canonical snake_case keys, on both the write and read paths.
    ASSERT_EQ(th_configure("streamMaxPending", "7"), 0)
        << th_last_error();
    char value[64];
    ASSERT_GE(th_config_get("stream_max_pending", value,
                            sizeof(value)), 0);
    EXPECT_STREQ(value, "7");
    ASSERT_GE(th_config_get("streamMaxPending", value, sizeof(value)),
              0);
    EXPECT_STREQ(value, "7");
    ASSERT_EQ(th_configure("adapt.targetMiss", "0.125"), 0)
        << th_last_error();
    ASSERT_GE(th_config_get("adapt.target_miss", value,
                            sizeof(value)), 0);
    EXPECT_STREQ(value, "0.125");
    // configKeys() enumerates canonical names only — no camelCase.
    for (const std::string &key : lsched::threads::configKeys())
        EXPECT_EQ(key, lsched::threads::canonicalConfigKey(key));
}

TEST_F(CApiTest, MetricSurfaceMirrorsTheFrozenStatsStruct)
{
    // Run a little work so the interesting counters are non-zero.
    for (std::uintptr_t i = 0; i < 50; ++i) {
        th_fork(&record, nullptr, reinterpret_cast<void *>(i),
                reinterpret_cast<void *>(i * 64), nullptr, nullptr);
    }
    th_run(0);

    // The named surface carries at least every th_stats_t field; the
    // struct is frozen (v1) and new telemetry lands here instead.
    const th_stats_t s = th_stats();
    const struct
    {
        const char *name;
        unsigned long long want;
    } parity[] = {
        {"sched.pending_threads", s.pending_threads},
        {"sched.executed_threads", s.executed_threads},
        {"sched.bins", s.bins},
        {"sched.bins.occupied", s.occupied_bins},
        {"sched.hash.max_chain", s.max_hash_chain},
        {"sched.tour.length", s.tour_length},
        {"sched.pool.threads", s.pool_threads_spawned},
        {"sched.pool.steals", s.pool_steals},
        {"sched.pool.parks", s.pool_parks},
        {"sched.placement",
         static_cast<unsigned long long>(s.placement)},
        {"sched.backend", static_cast<unsigned long long>(s.backend)},
        {"sched.bin.threads.mean",
         static_cast<unsigned long long>(
             std::llround(s.threads_per_bin_mean))},
        {"sched.bin.threads.min",
         static_cast<unsigned long long>(
             std::llround(s.threads_per_bin_min))},
        {"sched.bin.threads.max",
         static_cast<unsigned long long>(
             std::llround(s.threads_per_bin_max))},
        {"sched.bin.threads.stddev",
         static_cast<unsigned long long>(
             std::llround(s.threads_per_bin_stddev))},
        {"sched.faulted_threads", s.faulted_threads},
        {"sched.last_fault_count", s.last_fault_count},
        {"sched.stream.forked", s.stream_forked},
        {"sched.stream.executed", s.stream_executed},
        {"sched.stream.seals", s.stream_seals},
        {"sched.stream.backpressure", s.stream_backpressure_waits},
        {"sched.stream.inline_drains", s.stream_inline_drains},
        {"sched.stream.backlog", s.stream_backlog},
        {"sched.stream.peak_backlog", s.stream_peak_backlog},
        {"sched.recover.deadlines", s.recover_deadlines},
        {"sched.recover.watchdog_cancels", s.recover_watchdog_cancels},
        {"sched.recover.cancelled_bins", s.recover_cancelled_bins},
        {"sched.recover.cancelled_threads",
         s.recover_cancelled_threads},
        {"sched.recover.admission_retries",
         s.recover_admission_retries},
        {"sched.recover.admission_timeouts",
         s.recover_admission_timeouts},
        {"sched.recover.load_sheds", s.recover_load_sheds},
        {"sched.recover.degraded_tours", s.recover_degraded_tours},
        {"sched.recover.recoveries", s.recover_recoveries},
        {"sched.recover.state",
         static_cast<unsigned long long>(s.recover_state)},
        {"sched.adapt.retunes", s.adapt_retunes},
        {"sched.adapt.observations", s.adapt_observations},
        {"sched.adapt.block_bytes", s.adapt_block_bytes},
        {"sched.adapt.super_bin_fan", s.adapt_super_bin_fan},
        {"sched.adapt.regime",
         static_cast<unsigned long long>(s.adapt_regime)},
        {"sched.pool.pin_failed", s.pool_pin_failed},
        {"sched.pool.cross_steals", s.pool_cross_domain_steals},
    };
    for (const auto &row : parity) {
        unsigned long long value = ~0ull;
        ASSERT_EQ(th_metric_get(row.name, &value), 0)
            << row.name << ": " << th_last_error();
        EXPECT_EQ(value, row.want) << row.name;
    }
    EXPECT_EQ(th_metric_get("sched.executed_threads", nullptr), -1)
        << "NULL value pointer must be rejected";
}

TEST_F(CApiTest, MetricEnumerationRoundTripsEveryName)
{
    for (std::uintptr_t i = 0; i < 10; ++i) {
        th_fork(&record, nullptr, reinterpret_cast<void *>(i),
                reinterpret_cast<void *>(i * 4096), nullptr, nullptr);
    }
    th_run(0);

    const int count = th_metric_count();
    ASSERT_GT(count, 0);
    char prev[160] = "";
    for (int i = 0; i < count; ++i) {
        char name[160];
        ASSERT_GE(th_metric_name(i, name, sizeof(name)), 0)
            << "index " << i;
        // Sorted, duplicate-free enumeration: stable for pollers.
        EXPECT_LT(std::string(prev), std::string(name)) << i;
        std::memcpy(prev, name, sizeof(prev));
        unsigned long long value = 0;
        EXPECT_EQ(th_metric_get(name, &value), 0)
            << name << ": " << th_last_error();
    }
    char buf[8];
    th_clear_error();
    EXPECT_EQ(th_metric_name(count, buf, sizeof(buf)), -1);
    EXPECT_NE(th_last_error(), nullptr);

    th_clear_error();
    unsigned long long value = 0;
    EXPECT_EQ(th_metric_get("sched.no_such_metric", &value), -1);
    ASSERT_NE(th_last_error(), nullptr);
    EXPECT_NE(std::string(th_last_error()).find("sched.no_such_metric"),
              std::string::npos);
}

TEST_F(CApiTest, LegacySettersAreConfigureShims)
{
    // th_set_backend("coldspawn") always dropped the persistent pool;
    // the shim path must keep that coupling, observably through
    // th_config_get.
    ASSERT_EQ(th_set_backend("coldspawn"), 0);
    char value[8];
    ASSERT_GT(th_config_get("persistent_pool", value, sizeof(value)),
              0);
    EXPECT_STREQ(value, "0");

    ASSERT_EQ(th_configure("backend", "pooled"), 0);
    ASSERT_GT(th_config_get("persistent_pool", value, sizeof(value)),
              0);
    EXPECT_STREQ(value, "1");

    // And th_init is a shim over block_bytes/hash_buckets.
    th_init(8192, 64);
    ASSERT_GT(th_config_get("block_bytes", value, sizeof(value)), 0);
    EXPECT_STREQ(value, "8192");
    ASSERT_GT(th_config_get("hash_buckets", value, sizeof(value)), 0);
    EXPECT_STREQ(value, "64");
    th_init(0, 0);
}

std::atomic<std::uint64_t> g_streamRuns{0};

void
bumpStream(void *, void *)
{
    g_streamRuns.fetch_add(1, std::memory_order_relaxed);
}

TEST_F(CApiTest, StreamSessionThroughTheCBoundary)
{
    th_clear_error();
    EXPECT_EQ(th_stream_end(), -1ll) << "no stream open yet";
    ASSERT_NE(th_last_error(), nullptr);
    th_clear_error();

    g_streamRuns.store(0);
    ASSERT_EQ(th_configure("stream_seal_threshold", "16"), 0);
    const th_stats_t before = th_stats();
    ASSERT_EQ(th_stream_begin(1), 0);
    for (std::uintptr_t i = 0; i < 300; ++i) {
        th_fork(&bumpStream, nullptr, nullptr,
                reinterpret_cast<void *>((i % 40) * 0x100000),
                nullptr, nullptr);
    }
    EXPECT_EQ(th_stream_end(), 300ll);
    EXPECT_EQ(g_streamRuns.load(), 300u);

    // The appended (ABI rule) stream fields report the session.
    const th_stats_t after = th_stats();
    EXPECT_EQ(after.stream_forked - before.stream_forked, 300u);
    EXPECT_EQ(after.stream_executed - before.stream_executed, 300u);
    EXPECT_GE(after.stream_seals, before.stream_seals);
    EXPECT_EQ(after.stream_backlog, 0u);
    EXPECT_EQ(after.executed_threads - before.executed_threads, 300u);
    ASSERT_EQ(th_configure("stream_seal_threshold", "0"), 0);
}

TEST_F(CApiTest, SetDeadlineIsAConfigureShim)
{
    ASSERT_EQ(th_set_deadline(250), 0);
    char value[16];
    ASSERT_GT(th_config_get("deadline_millis", value, sizeof(value)),
              0);
    EXPECT_STREQ(value, "250");

    th_clear_error();
    EXPECT_EQ(th_set_deadline(-1), -1);
    ASSERT_NE(th_last_error(), nullptr);
    th_clear_error();

    // Fortran mirror: INTEGER*8 by reference; 0 disarms.
    const long long off = 0;
    th_set_deadline_(&off);
    ASSERT_GT(th_config_get("deadline_millis", value, sizeof(value)),
              0);
    EXPECT_STREQ(value, "0");
}

TEST_F(CApiTest, DeadlineSurfacesAsRecordedErrorAndRecoveryStats)
{
    if (!lsched::failpoint::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    // A wedged run at the C boundary: th_run reports the deadline
    // through th_last_error (C callers cannot catch DeadlineError)
    // and the appended th_stats recovery fields record it.
    const th_stats_t before = th_stats();
    ASSERT_EQ(th_set_deadline(50), 0);
    ASSERT_EQ(th_failpoint_arm("sched.bin.execute", "stall=150"), 0);
    for (std::uintptr_t i = 0; i < 32; ++i) {
        th_fork(&record, nullptr, reinterpret_cast<void *>(i),
                reinterpret_cast<void *>(i * 0x100000), nullptr,
                nullptr);
    }
    th_clear_error();
    th_run(0);
    th_failpoint_disarm_all();
    ASSERT_NE(th_last_error(), nullptr);
    EXPECT_NE(std::string(th_last_error()).find("cancelled"),
              std::string::npos);
    th_clear_error();

    const th_stats_t after = th_stats();
    EXPECT_EQ(after.recover_deadlines, before.recover_deadlines + 1);
    EXPECT_GT(after.recover_cancelled_threads,
              before.recover_cancelled_threads);
    EXPECT_EQ(after.recover_state, 0) << "governor disabled: healthy";
    EXPECT_EQ(th_default_scheduler().pendingThreads(), 0u);
    ASSERT_EQ(th_set_deadline(0), 0);
}

TEST_F(CApiTest, TraceControlsWriteFiles)
{
    if (!lsched::obs::kTraceCompiled)
        GTEST_SKIP() << "tracing compiled out (LSCHED_TRACE_ENABLED=0)";

    th_trace_enable();
    th_fork(&record, nullptr, reinterpret_cast<void *>(1), nullptr,
            nullptr, nullptr);
    th_run(0);

    const std::string trace_path =
        ::testing::TempDir() + "capi_trace.json";
    const std::string metrics_path =
        ::testing::TempDir() + "capi_metrics.csv";
    EXPECT_EQ(th_trace_write(trace_path.c_str()), 0);
    EXPECT_EQ(th_metrics_write(metrics_path.c_str()), 0);
    EXPECT_EQ(th_trace_write(nullptr), -1);
    EXPECT_EQ(th_metrics_write(nullptr), -1);
    th_trace_disable();
    lsched::obs::TraceSession::global().clear();
    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
}

} // namespace
