/** @file Unit tests for the DineroIII din trace format. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/din.hh"
#include "trace/recorder.hh"

namespace
{

using namespace lsched::trace;

std::string
tmpPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "lsched_" + tag + ".din";
}

TEST(Din, LabelsMatchDineroConvention)
{
    EXPECT_EQ(DinWriter::label(RefType::Load), 0);
    EXPECT_EQ(DinWriter::label(RefType::Store), 1);
    EXPECT_EQ(DinWriter::label(RefType::IFetch), 2);
}

TEST(Din, RoundTrip)
{
    const std::string path = tmpPath("roundtrip");
    {
        DinWriter w(path);
        w.load(0x1000, 8);
        w.store(0xdeadbeef, 8);
        w.ifetch(0x400000, 4);
        EXPECT_EQ(w.count(), 3u);
    }
    DinReader r(path);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.type, RefType::Load);
    EXPECT_EQ(rec.addr, 0x1000u);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.type, RefType::Store);
    EXPECT_EQ(rec.addr, 0xdeadbeefu);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.type, RefType::IFetch);
    EXPECT_EQ(rec.addr, 0x400000u);
    EXPECT_FALSE(r.next(rec));
    std::remove(path.c_str());
}

TEST(Din, FileIsPlainAscii)
{
    const std::string path = tmpPath("ascii");
    {
        DinWriter w(path);
        w.load(0xff, 8);
        w.store(0x10, 8);
    }
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "0 ff\n");
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "1 10\n");
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(Din, ReplayFeedsSink)
{
    const std::string path = tmpPath("replay");
    {
        DinWriter w(path);
        for (int i = 0; i < 64; ++i)
            w.load(static_cast<std::uint64_t>(i) * 64, 8);
        for (int i = 0; i < 32; ++i)
            w.ifetch(0x400000 + static_cast<std::uint64_t>(i) * 4, 4);
    }
    DinReader r(path);
    CountingSink sink;
    EXPECT_EQ(r.replay(sink), 96u);
    EXPECT_EQ(sink.loads(), 64u);
    EXPECT_EQ(sink.ifetches(), 32u);
    std::remove(path.c_str());
}

TEST(DinDeathTest, MalformedLineIsFatal)
{
    const std::string path = tmpPath("malformed");
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fputs("7 zz\n", f);
    std::fclose(f);
    DinReader r(path);
    TraceRecord rec;
    EXPECT_EXIT((void)r.next(rec), ::testing::ExitedWithCode(1),
                "malformed din record");
    std::remove(path.c_str());
}

} // namespace
