/** @file Unit tests for the locality thread scheduler. */

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

/** Records execution order of integer-tagged threads. */
struct Log
{
    std::vector<std::uintptr_t> order;

    static void
    record(void *self, void *tag)
    {
        static_cast<Log *>(self)->order.push_back(
            reinterpret_cast<std::uintptr_t>(tag));
    }
};

SchedulerConfig
smallConfig()
{
    SchedulerConfig c;
    c.dims = 2;
    c.cacheBytes = 1 << 20;
    c.blockBytes = 1 << 19; // C / 2
    c.hashBuckets = 64;
    c.groupCapacity = 4;
    return c;
}

TEST(Scheduler, RunsEveryThreadExactlyOnce)
{
    LocalityScheduler s(smallConfig());
    Log log;
    for (std::uintptr_t i = 0; i < 100; ++i) {
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i),
               static_cast<Hint>(i * 64), 0);
    }
    EXPECT_EQ(s.pendingThreads(), 100u);
    EXPECT_EQ(s.run(), 100u);
    EXPECT_EQ(s.pendingThreads(), 0u);
    ASSERT_EQ(log.order.size(), 100u);
    std::vector<bool> seen(100, false);
    for (auto tag : log.order) {
        ASSERT_LT(tag, 100u);
        EXPECT_FALSE(seen[tag]);
        seen[tag] = true;
    }
}

TEST(Scheduler, SameHintsSameBinRunConsecutively)
{
    LocalityScheduler s(smallConfig());
    Log log;
    const Hint far = 16u << 20;
    // Interleave forks of two hint groups; execution must cluster.
    for (std::uintptr_t i = 0; i < 10; ++i) {
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i), 0, 0);
        s.fork(&Log::record, &log,
               reinterpret_cast<void *>(100 + i), far, far);
    }
    s.run();
    ASSERT_EQ(log.order.size(), 20u);
    // First ten are the 0-hint threads, in fork order.
    for (std::uintptr_t i = 0; i < 10; ++i)
        EXPECT_EQ(log.order[i], i);
    for (std::uintptr_t i = 0; i < 10; ++i)
        EXPECT_EQ(log.order[10 + i], 100 + i);
}

TEST(Scheduler, BinsTraversedInCreationOrder)
{
    LocalityScheduler s(smallConfig());
    Log log;
    const Hint block = 1 << 19;
    // Create bins in order 2, 0, 1 (by first fork into each).
    s.fork(&Log::record, &log, reinterpret_cast<void *>(2), 2 * block, 0);
    s.fork(&Log::record, &log, reinterpret_cast<void *>(0), 0, 0);
    s.fork(&Log::record, &log, reinterpret_cast<void *>(1), 1 * block, 0);
    s.run();
    EXPECT_EQ(log.order, (std::vector<std::uintptr_t>{2, 0, 1}));
}

TEST(Scheduler, ThreadsWithinBinRunInForkOrder)
{
    LocalityScheduler s(smallConfig());
    Log log;
    for (std::uintptr_t i = 0; i < 20; ++i)
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i), 64, 64);
    s.run();
    for (std::uintptr_t i = 0; i < 20; ++i)
        EXPECT_EQ(log.order[i], i);
}

TEST(Scheduler, GroupOverflowChainsWithinBin)
{
    SchedulerConfig cfg = smallConfig();
    cfg.groupCapacity = 3; // force chaining at 10 threads
    LocalityScheduler s(cfg);
    Log log;
    for (std::uintptr_t i = 0; i < 10; ++i)
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i), 0, 0);
    s.run();
    ASSERT_EQ(log.order.size(), 10u);
    for (std::uintptr_t i = 0; i < 10; ++i)
        EXPECT_EQ(log.order[i], i);
}

TEST(Scheduler, KeepReRunsSameSchedule)
{
    LocalityScheduler s(smallConfig());
    Log log;
    for (std::uintptr_t i = 0; i < 5; ++i)
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i),
               static_cast<Hint>(i * (1 << 19)), 0);
    EXPECT_EQ(s.run(true), 5u);
    EXPECT_EQ(s.pendingThreads(), 5u);
    EXPECT_EQ(s.run(true), 5u);
    ASSERT_EQ(log.order.size(), 10u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(log.order[i], log.order[i + 5]);
    // A destructive run finally clears the schedule.
    EXPECT_EQ(s.run(false), 5u);
    EXPECT_EQ(s.pendingThreads(), 0u);
    EXPECT_EQ(s.run(false), 0u);
}

TEST(Scheduler, RunWithNoThreadsReturnsZero)
{
    LocalityScheduler s(smallConfig());
    EXPECT_EQ(s.run(), 0u);
}

TEST(Scheduler, ForkAfterRunStartsFreshSchedule)
{
    LocalityScheduler s(smallConfig());
    Log log;
    s.fork(&Log::record, &log, reinterpret_cast<void *>(1), 0, 0);
    s.run();
    s.fork(&Log::record, &log, reinterpret_cast<void *>(2), 0, 0);
    EXPECT_EQ(s.run(), 1u);
    EXPECT_EQ(log.order, (std::vector<std::uintptr_t>{1, 2}));
}

TEST(Scheduler, NestedForkRunsBeforeReturn)
{
    LocalityScheduler s(smallConfig());
    struct Ctx
    {
        LocalityScheduler *sched;
        Log log;
    } ctx{&s, {}};

    static auto child = [](void *c, void *tag) {
        Log::record(&static_cast<Ctx *>(c)->log, tag);
    };
    auto parent = [](void *c, void *tag) {
        auto *ctx = static_cast<Ctx *>(c);
        Log::record(&ctx->log, tag);
        // Fork a child into a far-away bin mid-run.
        ctx->sched->fork(child, ctx, reinterpret_cast<void *>(99),
                         static_cast<Hint>(64u << 20), 0);
    };
    s.fork(parent, &ctx, reinterpret_cast<void *>(1), 0, 0);
    EXPECT_EQ(s.run(), 2u);
    EXPECT_EQ(ctx.log.order, (std::vector<std::uintptr_t>{1, 99}));
    EXPECT_EQ(s.pendingThreads(), 0u);
}

TEST(Scheduler, NestedForkIntoCurrentBinAlsoRuns)
{
    LocalityScheduler s(smallConfig());
    struct Ctx
    {
        LocalityScheduler *sched;
        Log log;
    } ctx{&s, {}};

    static auto child = [](void *c, void *tag) {
        Log::record(&static_cast<Ctx *>(c)->log, tag);
    };
    auto parent = [](void *c, void *tag) {
        auto *ctx = static_cast<Ctx *>(c);
        Log::record(&ctx->log, tag);
        ctx->sched->fork(child, ctx, reinterpret_cast<void *>(7), 0, 0);
    };
    s.fork(parent, &ctx, reinterpret_cast<void *>(1), 0, 0);
    EXPECT_EQ(s.run(), 2u);
    EXPECT_EQ(ctx.log.order, (std::vector<std::uintptr_t>{1, 7}));
}

TEST(Scheduler, ClearDropsPendingThreads)
{
    LocalityScheduler s(smallConfig());
    Log log;
    for (std::uintptr_t i = 0; i < 10; ++i)
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i),
               static_cast<Hint>(i << 19), 0);
    s.clear();
    EXPECT_EQ(s.pendingThreads(), 0u);
    EXPECT_EQ(s.run(), 0u);
    EXPECT_TRUE(log.order.empty());
}

TEST(Scheduler, StatsTrackOccupancy)
{
    LocalityScheduler s(smallConfig());
    Log log;
    const Hint block = 1 << 19;
    for (std::uintptr_t i = 0; i < 30; ++i) {
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i),
               static_cast<Hint>((i % 3) * block), 0);
    }
    const SchedulerStats st = s.stats();
    EXPECT_EQ(st.pendingThreads, 30u);
    EXPECT_EQ(st.bins, 3u);
    EXPECT_EQ(st.occupiedBins, 3u);
    EXPECT_DOUBLE_EQ(st.threadsPerBin.mean(), 10.0);
    EXPECT_DOUBLE_EQ(st.threadsPerBin.coefficientOfVariation(), 0.0);
    s.run();
    EXPECT_EQ(s.stats().executedThreads, 30u);
}

TEST(Scheduler, BinOccupancyInReadyOrder)
{
    LocalityScheduler s(smallConfig());
    Log log;
    const Hint block = 1 << 19;
    s.fork(&Log::record, &log, nullptr, block, 0);
    s.fork(&Log::record, &log, nullptr, block, 0);
    s.fork(&Log::record, &log, nullptr, 0, 0);
    EXPECT_EQ(s.binOccupancy(), (std::vector<std::uint64_t>{2, 1}));
}

TEST(Scheduler, SymmetricHintsShareBin)
{
    SchedulerConfig cfg = smallConfig();
    cfg.symmetricHints = true;
    LocalityScheduler s(cfg);
    Log log;
    const Hint block = 1 << 19;
    s.fork(&Log::record, &log, nullptr, 0, 3 * block);
    s.fork(&Log::record, &log, nullptr, 3 * block, 0);
    EXPECT_EQ(s.binCount(), 1u);
}

TEST(Scheduler, DefaultBlockIsCacheOverDims)
{
    SchedulerConfig cfg;
    cfg.dims = 3;
    cfg.cacheBytes = 3 << 20;
    cfg.blockBytes = 0;
    LocalityScheduler s(cfg);
    EXPECT_EQ(s.config().blockBytes, 1u << 20);
}

TEST(Scheduler, ConfigureResetsBins)
{
    LocalityScheduler s(smallConfig());
    Log log;
    s.fork(&Log::record, &log, nullptr, 0, 0);
    s.run();
    SchedulerConfig cfg = smallConfig();
    cfg.blockBytes = 1 << 10;
    s.configure(cfg);
    EXPECT_EQ(s.binCount(), 0u);
    EXPECT_EQ(s.config().blockBytes, 1u << 10);
}

TEST(SchedulerMisuse, ConfigureWithPendingThreadsThrows)
{
    LocalityScheduler s(smallConfig());
    Log log;
    s.fork(&Log::record, &log, nullptr, 0, 0);
    EXPECT_THROW(s.configure(smallConfig()), lsched::UsageError);
    // The pending thread is untouched by the failed configure().
    EXPECT_EQ(s.stats().pendingThreads, 1u);
    s.run();
    EXPECT_EQ(log.order.size(), 1u);
}

TEST(SchedulerDeathTest, NullFunctionPanics)
{
    LocalityScheduler s(smallConfig());
    EXPECT_DEATH(s.fork(nullptr, nullptr, nullptr, 0, 0), "null");
}

} // namespace
