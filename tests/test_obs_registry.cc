/**
 * @file
 * Unit tests for the metrics registry: instrument semantics, export
 * renderings, and correctness under concurrent runParallel updates.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/registry.hh"
#include "obs/trace.hh"
#include "threads/scheduler.hh"

namespace
{

using lsched::obs::Counter;
using lsched::obs::Histogram;
using lsched::obs::Registry;

TEST(ObsRegistry, CounterAddsAndResets)
{
    Registry r;
    Counter &c = r.counter("test.counter");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Find-or-create returns the same instrument.
    EXPECT_EQ(&r.counter("test.counter"), &c);
    r.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, GaugeHoldsLastValue)
{
    Registry r;
    auto &g = r.gauge("test.gauge");
    g.set(7);
    g.set(3);
    EXPECT_EQ(g.value(), 3u);
}

TEST(ObsRegistry, HistogramSummaryIsExact)
{
    Registry r;
    Histogram &h = r.histogram("test.hist");
    for (std::uint64_t v : {5u, 1u, 9u, 0u, 5u})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 20u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 9u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(ObsRegistry, HistogramBucketsByBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~0ull), 64u);

    Histogram h;
    h.record(0);
    h.record(2);
    h.record(3);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(ObsRegistry, RendersAllFormats)
{
    Registry r;
    r.counter("alpha").add(3);
    r.gauge("beta").set(5);
    r.histogram("gamma").record(8);

    const auto rows = r.rows();
    ASSERT_EQ(rows.size(), 3u);

    const std::string text = r.toText();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("counter"), std::string::npos);

    const std::string csv = r.toCsv();
    EXPECT_NE(csv.find("alpha,"), std::string::npos);

    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"alpha\":3"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

void
bumpCounter(void *counter_p, void *)
{
    static_cast<Counter *>(counter_p)->add();
}

TEST(ObsRegistry, CountsAreExactUnderRunParallel)
{
    namespace obs = lsched::obs;
    namespace threads = lsched::threads;

    obs::setMetricsEnabled(true);
    Counter &hits = Registry::global().counter("test.parallel.hits");
    hits.reset();
    Counter &executed =
        Registry::global().counter("sched.threads.executed");
    const std::uint64_t executed_before = executed.value();

    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 4096;
    threads::LocalityScheduler sched(cfg);
    constexpr std::uint64_t kThreads = 1000;
    for (std::uint64_t i = 0; i < kThreads; ++i) {
        sched.fork(&bumpCounter, &hits, nullptr,
                   static_cast<threads::Hint>(i * 512));
    }
    EXPECT_EQ(sched.runParallel(4, false), kThreads);

    EXPECT_EQ(hits.value(), kThreads);
    if (obs::kTraceCompiled)
        EXPECT_EQ(executed.value() - executed_before, kThreads);
    obs::setMetricsEnabled(false);
}

TEST(ObsRegistry, SchedulerPublishesOccupancyGauges)
{
    namespace obs = lsched::obs;
    namespace threads = lsched::threads;

    obs::setMetricsEnabled(true);
    threads::SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 4096;
    threads::LocalityScheduler sched(cfg);
    for (std::uint64_t i = 0; i < 8; ++i) {
        sched.fork(&bumpCounter,
                   &Registry::global().counter("test.occupancy.hits"),
                   nullptr, static_cast<threads::Hint>((i % 2) * 65536));
    }
    const auto stats = sched.stats();
    EXPECT_EQ(stats.occupiedBins, 2u);
    if (obs::kTraceCompiled) {
        EXPECT_EQ(
            Registry::global().gauge("sched.bins.occupied").value(),
            2u);
        EXPECT_EQ(
            Registry::global().gauge("sched.pending_threads").value(),
            8u);
    }
    sched.run(false);
    obs::setMetricsEnabled(false);
}

} // namespace
