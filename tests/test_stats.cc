/** @file Unit tests for support/stats.hh. */

#include <gtest/gtest.h>

#include "support/stats.hh"

namespace
{

using lsched::Summary;
using lsched::summarize;

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleSample)
{
    Summary s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, KnownMoments)
{
    Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12); // classic population-sd example
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.coefficientOfVariation(), 0.4, 1e-12);
}

TEST(Summary, UniformDistributionHasLowCov)
{
    Summary s;
    for (int i = 0; i < 100; ++i)
        s.add(1000.0);
    EXPECT_DOUBLE_EQ(s.coefficientOfVariation(), 0.0);
}

TEST(Summary, SummarizeVector)
{
    const Summary s = summarize({1, 2, 3, 4});
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

} // namespace
