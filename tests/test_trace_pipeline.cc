/**
 * @file Integration tests of the trace substrate: online simulation,
 * trace capture, offline replay, and din export must all agree — the
 * Pixie -> DineroIII pipeline property the paper's methodology rests
 * on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "support/prng.hh"
#include "trace/din.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched;
using namespace lsched::trace;
using namespace lsched::workloads;

std::string
tmpPath(const char *tag, const char *ext)
{
    return std::string(::testing::TempDir()) + "lsched_" + tag + ext;
}

/** Duplicates a reference stream into two sinks. */
class FanSink final : public TraceSink
{
  public:
    FanSink(TraceSink &a, TraceSink &b) : a_(a), b_(b) {}

    void
    ref(RefType t, std::uint64_t addr, std::uint32_t s) override
    {
        a_.ref(t, addr, s);
        b_.ref(t, addr, s);
    }

  private:
    TraceSink &a_;
    TraceSink &b_;
};

/** Memory-model policy that forwards data references to a TraceSink. */
struct SinkModel
{
    static constexpr bool traced = true;
    TraceSink *sink;

    void
    load(const void *p, std::uint32_t s)
    {
        sink->ref(RefType::Load, reinterpret_cast<std::uintptr_t>(p),
                  s);
    }
    void
    store(const void *p, std::uint32_t s)
    {
        sink->ref(RefType::Store, reinterpret_cast<std::uintptr_t>(p),
                  s);
    }
    void instructions(std::uint64_t) {}
    void enterKernel(unsigned) {}
};

/** Emit the data-reference stream of a small matmul into @p sink. */
void
recordWorkload(TraceSink &sink)
{
    const std::size_t n = 16;
    Matrix a(n, n), b(n, n), c(n, n);
    randomize(a, 1);
    randomize(b, 2);
    SinkModel model{&sink};
    matmulInterchanged(a, b, c, model);
}

TEST(TracePipeline, OfflineReplayMatchesOnlineSimulation)
{
    const std::string path = tmpPath("pipeline", ".ltrc");
    const cachesim::HierarchyConfig cfg =
        machine::scaled(machine::powerIndigo2R8000(), 64).caches;

    // Online: simulate while recording the same stream to disk.
    cachesim::Hierarchy online(cfg);
    {
        HierarchySink live(online);
        TraceWriter writer(path);
        FanSink fan(live, writer);
        recordWorkload(fan);
    }

    // Offline: replay the file into a fresh identical hierarchy.
    cachesim::Hierarchy offline(cfg);
    {
        TraceReader reader(path);
        HierarchySink sink(offline);
        reader.replay(sink);
    }

    EXPECT_GT(online.dataRefs(), 10000u);
    EXPECT_EQ(offline.dataRefs(), online.dataRefs());
    EXPECT_EQ(offline.l1dStats().accesses, online.l1dStats().accesses);
    EXPECT_EQ(offline.l1dStats().misses, online.l1dStats().misses);
    EXPECT_EQ(offline.l2Stats().misses, online.l2Stats().misses);
    EXPECT_EQ(offline.l2Stats().capacityMisses,
              online.l2Stats().capacityMisses);
    EXPECT_EQ(offline.l2Stats().conflictMisses,
              online.l2Stats().conflictMisses);
    std::remove(path.c_str());
}

TEST(TracePipeline, LtrcAndDinExportsDescribeTheSameStream)
{
    const std::string ltrc = tmpPath("same", ".ltrc");
    const std::string din = tmpPath("same", ".din");
    {
        TraceWriter lw(ltrc);
        DinWriter dw(din);
        FanSink fan(lw, dw);
        recordWorkload(fan);
        EXPECT_EQ(lw.count(), dw.count());
    }
    TraceReader lr(ltrc);
    DinReader dr(din);
    TraceRecord a, b;
    std::uint64_t records = 0;
    while (lr.next(a)) {
        ASSERT_TRUE(dr.next(b));
        ASSERT_EQ(a.type, b.type) << "record " << records;
        ASSERT_EQ(a.addr, b.addr) << "record " << records;
        ++records;
    }
    EXPECT_FALSE(dr.next(b));
    EXPECT_GT(records, 10000u);
    std::remove(ltrc.c_str());
    std::remove(din.c_str());
}

TEST(TracePipeline, DinReplayProducesSameMissesAsLtrcReplay)
{
    const std::string ltrc = tmpPath("misses", ".ltrc");
    const std::string din = tmpPath("misses", ".din");
    {
        TraceWriter lw(ltrc);
        DinWriter dw(din);
        FanSink fan(lw, dw);
        // A deterministic synthetic stream exercising all types.
        Prng prng(5);
        for (int i = 0; i < 20000; ++i) {
            const auto type = static_cast<RefType>(prng.nextBelow(3));
            const std::uint64_t addr = prng.nextBelow(1 << 16) & ~3ull;
            fan.ref(type, addr, 4);
        }
    }
    const cachesim::HierarchyConfig cfg =
        machine::scaled(machine::powerIndigo2R8000(), 128).caches;
    cachesim::Hierarchy from_ltrc(cfg), from_din(cfg);
    {
        TraceReader r(ltrc);
        HierarchySink s(from_ltrc);
        r.replay(s);
    }
    {
        DinReader r(din);
        HierarchySink s(from_din);
        r.replay(s);
    }
    EXPECT_EQ(from_ltrc.l1dStats().misses,
              from_din.l1dStats().misses);
    EXPECT_EQ(from_ltrc.l1iStats().misses,
              from_din.l1iStats().misses);
    EXPECT_EQ(from_ltrc.l2Stats().misses, from_din.l2Stats().misses);
    std::remove(ltrc.c_str());
    std::remove(din.c_str());
}

} // namespace
