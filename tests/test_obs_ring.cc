/** @file Unit tests for the single-writer trace event ring. */

#include <gtest/gtest.h>

#include "obs/ring_buffer.hh"

namespace
{

using lsched::obs::Event;
using lsched::obs::EventRing;
using lsched::obs::EventType;

Event
eventAt(std::uint64_t i)
{
    return Event{i, i, i * 2, i * 3, EventType::ThreadFork};
}

TEST(ObsRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(EventRing(0).capacity(), 1u);
    EXPECT_EQ(EventRing(1).capacity(), 1u);
    EXPECT_EQ(EventRing(3).capacity(), 4u);
    EXPECT_EQ(EventRing(8).capacity(), 8u);
    EXPECT_EQ(EventRing(100).capacity(), 128u);
}

TEST(ObsRing, RetainsEverythingBelowCapacity)
{
    EventRing ring(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.push(eventAt(i));
    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);

    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].ns, i);
        EXPECT_EQ(events[i].a, i);
        EXPECT_EQ(events[i].b, i * 2);
        EXPECT_EQ(events[i].c, i * 3);
    }
}

TEST(ObsRing, WrapKeepsNewestAndCountsDrops)
{
    EventRing ring(8);
    const std::uint64_t total = 20; // 2.5x capacity
    for (std::uint64_t i = 0; i < total; ++i)
        ring.push(eventAt(i));
    EXPECT_EQ(ring.recorded(), total);
    EXPECT_EQ(ring.size(), ring.capacity());
    EXPECT_EQ(ring.dropped(), total - ring.capacity());

    // The retained window is the newest capacity() events, oldest
    // first.
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), ring.capacity());
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].ns, total - ring.capacity() + i);
}

TEST(ObsRing, ExactlyFullIsNotADrop)
{
    EventRing ring(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        ring.push(eventAt(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.dropped(), 0u);
    ring.push(eventAt(4));
    EXPECT_EQ(ring.dropped(), 1u);
    EXPECT_EQ(ring.snapshot().front().ns, 1u);
    EXPECT_EQ(ring.snapshot().back().ns, 4u);
}

} // namespace
