/**
 * @file Quantitative cross-checks: simulated miss counts must match
 * closed-form analytic predictions for streaming workloads. These pin
 * the simulator + workload integration to first-principles numbers,
 * not just to relative shapes.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/machine_config.hh"
#include "workloads/matmul.hh"
#include "workloads/sor.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

TEST(AnalyticBounds, SorUntiledStreamsArrayOncePerIteration)
{
    // Array (n^2 * 8 bytes) >> L2: every sweep re-streams it, so
    // L2 misses ~= t * array_lines (three concurrently live columns
    // prevent any cross-iteration reuse, halo effects are O(n)).
    const std::size_t n = 256;
    const unsigned t = 6;
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 32); // 64 KB L2
    const auto outcome =
        harness::simulateOn(machine, [&](SimModel &m) {
            Matrix a = sorInit(n, 3);
            sorUntiled(a, t, m);
        });
    const double array_lines =
        static_cast<double>(n * n * sizeof(double)) /
        static_cast<double>(machine.caches.l2.lineBytes);
    const double predicted = t * array_lines;
    EXPECT_NEAR(static_cast<double>(outcome.l2.misses), predicted,
                predicted * 0.15);
}

TEST(AnalyticBounds, SorDataRefsAreExact)
{
    // 3 loads + 1 store per interior point per iteration, by design.
    const std::size_t n = 100;
    const unsigned t = 7;
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 64);
    const auto outcome =
        harness::simulateOn(machine, [&](SimModel &m) {
            Matrix a = sorInit(n, 3);
            sorUntiled(a, t, m);
        });
    EXPECT_EQ(outcome.dataRefs,
              4ull * (n - 2) * (n - 2) * t);
}

TEST(AnalyticBounds, MatmulUntiledMissesMatchStreamingModel)
{
    // jki order with B registered: per (j, k) pair the A column
    // streams (n*8/line L2 lines, re-fetched every j because A >> L2)
    // and the C column stays resident within j. Dominant term:
    //   misses ~= n^2 * (n * 8 / line)   [A re-streams]
    //           + n * (n * 8 / line)     [C, once per j]
    //           + n^2 * 8 / line         [B, compulsory]
    const std::size_t n = 192;
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 64); // 32 KB L2
    const auto outcome =
        harness::simulateOn(machine, [&](SimModel &m) {
            Matrix a(n, n), b(n, n), c(n, n);
            randomize(a, 1);
            randomize(b, 2);
            matmulInterchanged(a, b, c, m);
        });
    const double line =
        static_cast<double>(machine.caches.l2.lineBytes);
    const double col_lines = static_cast<double>(n) * 8 / line;
    const double predicted =
        static_cast<double>(n) * n * col_lines + // A
        static_cast<double>(n) * col_lines +     // C
        static_cast<double>(n) * n * 8 / line;   // B
    EXPECT_NEAR(static_cast<double>(outcome.l2.misses), predicted,
                predicted * 0.2);
}

TEST(AnalyticBounds, MatmulInstructionChargesFollowThePaper)
{
    // Paper Section 4.2: ~5 instructions per madd for the untiled
    // interchanged form; our analytic I-fetch model must land there.
    const std::size_t n = 64;
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 64);
    const auto outcome =
        harness::simulateOn(machine, [&](SimModel &m) {
            Matrix a(n, n), b(n, n), c(n, n);
            randomize(a, 1);
            randomize(b, 2);
            matmulInterchanged(a, b, c, m);
        });
    const double per_madd =
        static_cast<double>(outcome.ifetches) /
        static_cast<double>(n) / n / n;
    EXPECT_GT(per_madd, 4.9);
    EXPECT_LT(per_madd, 5.4);
}

TEST(AnalyticBounds, ThreadedMatmulLowerBoundIsCompulsory)
{
    // No schedule can beat compulsory misses: total data is three
    // matrices plus the transpose buffer.
    const std::size_t n = 128;
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 32);
    const auto outcome =
        harness::simulateOn(machine, [&](SimModel &m) {
            Matrix a(n, n), b(n, n), c(n, n);
            randomize(a, 1);
            randomize(b, 2);
            threads::SchedulerConfig cfg;
            cfg.dims = 2;
            cfg.cacheBytes = machine.l2Size();
            cfg.blockBytes = machine.l2Size() / 2;
            threads::LocalityScheduler sched(cfg);
            matmulThreaded(a, b, c, sched, m);
        });
    const std::uint64_t matrix_lines =
        n * n * sizeof(double) / machine.caches.l2.lineBytes;
    EXPECT_GE(outcome.l2.misses, 4 * matrix_lines); // A, At, B, C
    EXPECT_EQ(outcome.l2.compulsoryMisses >= 4 * matrix_lines, true);
}

} // namespace
