/** @file Unit tests for the machine configurations. */

#include <gtest/gtest.h>

#include "machine/machine_config.hh"

namespace
{

using namespace lsched::machine;

TEST(MachineConfig, R8000MatchesPaper)
{
    const MachineConfig m = powerIndigo2R8000();
    EXPECT_DOUBLE_EQ(m.clockHz, 75e6);
    EXPECT_EQ(m.caches.l1i.sizeBytes, 16u * 1024);
    EXPECT_EQ(m.caches.l1d.sizeBytes, 16u * 1024);
    EXPECT_EQ(m.caches.l1d.lineBytes, 32u);
    EXPECT_EQ(m.caches.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(m.caches.l2.lineBytes, 128u);
    EXPECT_EQ(m.caches.l2.associativity, 4u);
    EXPECT_DOUBLE_EQ(m.l2MissSeconds, 1.06e-6);
    m.caches.l1i.validate();
    m.caches.l1d.validate();
    m.caches.l2.validate();
}

TEST(MachineConfig, R10000MatchesPaper)
{
    const MachineConfig m = indigo2ImpactR10000();
    EXPECT_DOUBLE_EQ(m.clockHz, 195e6);
    EXPECT_EQ(m.caches.l1i.sizeBytes, 32u * 1024);
    EXPECT_EQ(m.caches.l1i.lineBytes, 64u);
    EXPECT_EQ(m.caches.l1i.associativity, 2u);
    EXPECT_EQ(m.caches.l1d.lineBytes, 32u);
    EXPECT_EQ(m.caches.l2.sizeBytes, 1u * 1024 * 1024);
    EXPECT_EQ(m.caches.l2.associativity, 2u);
    EXPECT_DOUBLE_EQ(m.l2MissSeconds, 0.85e-6);
}

TEST(MachineConfig, L2SizeAccessor)
{
    EXPECT_EQ(powerIndigo2R8000().l2Size(), 2u * 1024 * 1024);
}

TEST(MachineConfig, ScalingShrinksCaches)
{
    const MachineConfig m = scaled(powerIndigo2R8000(), 16);
    EXPECT_EQ(m.caches.l2.sizeBytes, 128u * 1024);
    // L1 is floored at 8 KB so L1 misses do not swamp the timing
    // model at small scales (DESIGN.md substitution 5).
    EXPECT_EQ(m.caches.l1d.sizeBytes, 8u * 1024);
    // Invariants preserved.
    EXPECT_EQ(m.caches.l2.lineBytes, 128u);
    EXPECT_EQ(m.caches.l2.associativity, 4u);
    EXPECT_DOUBLE_EQ(m.l2MissSeconds, 1.06e-6);
    m.caches.l1i.validate();
    m.caches.l1d.validate();
    m.caches.l2.validate();
}

TEST(MachineConfig, ScalingClampsAtOneLinePerWay)
{
    const MachineConfig m = scaled(powerIndigo2R8000(), 1u << 20);
    EXPECT_GE(m.caches.l2.sizeBytes,
              m.caches.l2.ways() * m.caches.l2.lineBytes);
    m.caches.l2.validate();
}

TEST(MachineConfig, ScaleByOneIsIdentity)
{
    const MachineConfig base = powerIndigo2R8000();
    const MachineConfig m = scaled(base, 1);
    EXPECT_EQ(m.name, base.name);
    EXPECT_EQ(m.caches.l2.sizeBytes, base.caches.l2.sizeBytes);
}

TEST(MachineConfigDeathTest, NonPowerOfTwoFactorPanics)
{
    EXPECT_DEATH((void)scaled(powerIndigo2R8000(), 3), "power of two");
}

} // namespace
