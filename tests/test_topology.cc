/**
 * @file
 * Cache-topology tests: the spec-string grammar, the sysfs golden
 * fixtures (SMT, heterogeneous clusters, missing L3, the degenerate
 * 1-CPU tree), the pin plan, domain mapping, the config derivation
 * rules (cache_bytes and super_bin_fan from the tree), the
 * LSCHED_TOPOLOGY env override, the set->get->set round-trip of every
 * config key, and exactly-once parallel execution under a forced
 * synthetic topology.
 *
 * Fixture trees live under tests/fixtures/topology/<case>/, each a
 * miniature /sys/devices/system/cpu with only the files fromSysfs
 * reads. The directory is baked in via LSCHED_TOPOLOGY_FIXTURES.
 */

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "machine/topology.hh"
#include "support/error.hh"
#include "threads/c_api.hh"
#include "threads/config_keys.hh"
#include "threads/placement.hh"
#include "threads/scheduler.hh"

namespace
{

using lsched::machine::CacheTopology;
using lsched::machine::TopologySource;
using lsched::threads::LocalityScheduler;
using lsched::threads::SchedulerConfig;
using lsched::threads::TopologyPlacement;

std::string
fixture(const char *name)
{
    return std::string(LSCHED_TOPOLOGY_FIXTURES) + "/" + name;
}

TEST(TopologySpec, FullSpecRoundTrips)
{
    CacheTopology topo;
    std::string error;
    ASSERT_TRUE(CacheTopology::fromSpec("2x2x2x2/l2=512K/l3=8M", &topo,
                                        &error))
        << error;
    EXPECT_EQ(topo.source(), TopologySource::Spec);
    EXPECT_EQ(topo.cpus(), 16u);
    EXPECT_EQ(topo.packages(), 2u);
    EXPECT_EQ(topo.l3Clusters(), 4u);
    EXPECT_EQ(topo.l2Groups(), 8u);
    EXPECT_EQ(topo.smtPerCore(), 2u);
    EXPECT_EQ(topo.l2Bytes(), 512u * 1024);
    EXPECT_EQ(topo.l3Bytes(), 8u * 1024 * 1024);
    EXPECT_EQ(topo.groupsPerCluster(), 2u);

    // specString() reproduces the same tree when fed back in.
    CacheTopology again;
    ASSERT_TRUE(
        CacheTopology::fromSpec(topo.specString(), &again, &error))
        << topo.specString() << ": " << error;
    EXPECT_EQ(again.cpus(), topo.cpus());
    EXPECT_EQ(again.l2Groups(), topo.l2Groups());
    EXPECT_EQ(again.l3Clusters(), topo.l3Clusters());
    EXPECT_EQ(again.smtPerCore(), topo.smtPerCore());
    EXPECT_EQ(again.l2Bytes(), topo.l2Bytes());
    EXPECT_EQ(again.l3Bytes(), topo.l3Bytes());
}

TEST(TopologySpec, SizesDefaultWhenOmitted)
{
    CacheTopology topo;
    ASSERT_TRUE(CacheTopology::fromSpec("1x1x4x1", &topo, nullptr));
    EXPECT_EQ(topo.l2Bytes(), 256u * 1024);
    // Default L3 = l2 * groupsPerCluster * 4.
    EXPECT_EQ(topo.l3Bytes(), 256u * 1024 * 4 * 4);
    EXPECT_EQ(topo.groupsPerCluster(), 4u);
}

TEST(TopologySpec, MalformedSpecsAreRejected)
{
    CacheTopology topo;
    std::string error;
    EXPECT_FALSE(CacheTopology::fromSpec("", &topo, &error));
    EXPECT_FALSE(CacheTopology::fromSpec("1x2x2", &topo, &error));
    EXPECT_FALSE(CacheTopology::fromSpec("1x2x2x1x3", &topo, &error));
    EXPECT_FALSE(CacheTopology::fromSpec("0x1x1x1", &topo, &error));
    EXPECT_FALSE(CacheTopology::fromSpec("1x2x2x", &topo, &error));
    EXPECT_FALSE(CacheTopology::fromSpec("axbxcxd", &topo, &error));
    EXPECT_FALSE(
        CacheTopology::fromSpec("1x1x1x1/bogus=2", &topo, &error));
    EXPECT_FALSE(
        CacheTopology::fromSpec("1x1x1x1/l2=0", &topo, &error));
    // Over the CPU sanity cap.
    EXPECT_FALSE(
        CacheTopology::fromSpec("2x1x4096x2", &topo, &error));
    EXPECT_FALSE(error.empty());
}

TEST(TopologySpec, FlatAndDegenerateTrees)
{
    const CacheTopology one = CacheTopology::flat(1);
    EXPECT_EQ(one.cpus(), 1u);
    EXPECT_EQ(one.l2Groups(), 1u);
    EXPECT_TRUE(one.pinPlan().empty());
    // flat(0) still models one CPU.
    EXPECT_EQ(CacheTopology::flat(0).cpus(), 1u);

    CacheTopology single;
    ASSERT_TRUE(CacheTopology::fromSpec("1x1x1x1", &single, nullptr));
    EXPECT_EQ(single.cpus(), 1u);
    EXPECT_EQ(single.groupsPerCluster(), 1u);
    EXPECT_TRUE(single.pinPlan().empty());
}

TEST(TopologySpec, PinPlanInterleavesDomainsCoresFirst)
{
    CacheTopology topo;
    ASSERT_TRUE(CacheTopology::fromSpec("1x2x2x2", &topo, nullptr));
    ASSERT_EQ(topo.cpus(), 8u);
    ASSERT_EQ(topo.l2Groups(), 4u);
    const std::vector<unsigned> plan = topo.pinPlan();
    ASSERT_EQ(plan.size(), 8u);
    // plan[i] must live in L2 group i % groups — that is the
    // worker-id-to-domain contract the partitioner relies on.
    for (std::size_t i = 0; i < plan.size(); ++i)
        EXPECT_EQ(topo.l2GroupOf(plan[i]), i % topo.l2Groups()) << i;
    // Distinct physical cores come before their SMT siblings: with one
    // core per group, the first `groups` entries cover every core.
    EXPECT_EQ(plan[0], 0u);
    EXPECT_EQ(plan[1], 2u);
    EXPECT_EQ(plan[2], 4u);
    EXPECT_EQ(plan[3], 6u);
}

TEST(TopologyDomain, DomainOfMapsSuperBinsAndFlatBins)
{
    constexpr std::uint32_t none = lsched::threads::kNoSuperBin;
    EXPECT_EQ(TopologyPlacement::domainOf(5, 99, 4), 1u);
    EXPECT_EQ(TopologyPlacement::domainOf(none, 99, 4), 3u);
    EXPECT_EQ(TopologyPlacement::domainOf(7, 0, 0), 0u);
}

TEST(TopologySysfs, SmtFixtureSharesL2PerCore)
{
    CacheTopology topo;
    ASSERT_TRUE(CacheTopology::fromSysfs(fixture("smt"), &topo));
    EXPECT_EQ(topo.source(), TopologySource::Sysfs);
    EXPECT_EQ(topo.cpus(), 4u);
    EXPECT_EQ(topo.packages(), 1u);
    EXPECT_EQ(topo.l3Clusters(), 1u);
    EXPECT_EQ(topo.l2Groups(), 2u);
    EXPECT_EQ(topo.smtPerCore(), 2u);
    EXPECT_EQ(topo.l2Bytes(), 512u * 1024);
    EXPECT_EQ(topo.l3Bytes(), 8u * 1024 * 1024);
    EXPECT_EQ(topo.groupsPerCluster(), 2u);
    // SMT siblings share a group; the two cores are distinct groups.
    EXPECT_EQ(topo.l2GroupOf(0), topo.l2GroupOf(1));
    EXPECT_EQ(topo.l2GroupOf(2), topo.l2GroupOf(3));
    EXPECT_NE(topo.l2GroupOf(0), topo.l2GroupOf(2));
    // The pin plan alternates cores before SMT siblings.
    const std::vector<unsigned> plan = topo.pinPlan();
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_NE(topo.l2GroupOf(plan[0]), topo.l2GroupOf(plan[1]));
}

TEST(TopologySysfs, HeterogeneousClustersTakeTheMaxRatio)
{
    CacheTopology topo;
    ASSERT_TRUE(CacheTopology::fromSysfs(fixture("hetero"), &topo));
    EXPECT_EQ(topo.cpus(), 8u);
    EXPECT_EQ(topo.l3Clusters(), 2u);
    // Four private L2s in the big cluster, one shared L2 in the
    // little cluster.
    EXPECT_EQ(topo.l2Groups(), 5u);
    EXPECT_EQ(topo.groupsPerCluster(), 4u);
    EXPECT_EQ(topo.smtPerCore(), 1u);
    // Sizes report the largest level seen anywhere in the tree.
    EXPECT_EQ(topo.l2Bytes(), 2u * 1024 * 1024);
    EXPECT_EQ(topo.l3Bytes(), 16u * 1024 * 1024);
    EXPECT_EQ(topo.l2GroupOf(4), topo.l2GroupOf(7));
    EXPECT_NE(topo.l2GroupOf(0), topo.l2GroupOf(1));
}

TEST(TopologySysfs, MissingL3FallsBackToNumaNodes)
{
    CacheTopology topo;
    ASSERT_TRUE(CacheTopology::fromSysfs(fixture("no_l3"), &topo));
    EXPECT_EQ(topo.cpus(), 2u);
    EXPECT_EQ(topo.l2Groups(), 2u);
    EXPECT_EQ(topo.l3Bytes(), 0u);
    // node<N>/cpulist overrides the package, and with no L3 the
    // cluster falls back to one per package.
    EXPECT_EQ(topo.packages(), 2u);
    EXPECT_EQ(topo.l3Clusters(), 2u);
    EXPECT_EQ(topo.groupsPerCluster(), 1u);
}

TEST(TopologySysfs, SingleCpuTreeIsDegenerate)
{
    CacheTopology topo;
    ASSERT_TRUE(CacheTopology::fromSysfs(fixture("single"), &topo));
    EXPECT_EQ(topo.cpus(), 1u);
    EXPECT_EQ(topo.l2Groups(), 1u);
    EXPECT_EQ(topo.groupsPerCluster(), 1u);
    EXPECT_EQ(topo.l2Bytes(), 512u * 1024);
    EXPECT_TRUE(topo.pinPlan().empty());
}

TEST(TopologySysfs, MissingRootFails)
{
    CacheTopology topo;
    EXPECT_FALSE(
        CacheTopology::fromSysfs(fixture("does_not_exist"), &topo));
}

TEST(TopologyConfig, SpecDerivesCacheBytesAndFan)
{
    SchedulerConfig c;
    c.cacheBytes = 0;
    c.placement = lsched::threads::PlacementKind::Hierarchical;
    c.superBinFan = 0;
    c.topology = "1x2x2x1/l2=64K";
    LocalityScheduler sched(c);
    EXPECT_EQ(sched.config().cacheBytes, 64u * 1024);
    // Fan = L2 groups per L3 cluster.
    EXPECT_EQ(sched.config().superBinFan, 2u);
    const auto stats = sched.stats();
    EXPECT_TRUE(stats.topology.active);
    EXPECT_EQ(stats.topology.source, 2u);
    EXPECT_EQ(stats.topology.l2Groups, 4u);
    EXPECT_EQ(stats.topology.derivedFan, 2u);
    EXPECT_FALSE(stats.topology.summary.empty());
}

TEST(TopologyConfig, ExplicitKnobsOverrideTheTree)
{
    SchedulerConfig c;
    c.cacheBytes = 128 * 1024;
    c.placement = lsched::threads::PlacementKind::Hierarchical;
    c.superBinFan = 8;
    c.topology = "1x2x2x1/l2=64K";
    LocalityScheduler sched(c);
    EXPECT_EQ(sched.config().cacheBytes, 128u * 1024);
    EXPECT_EQ(sched.config().superBinFan, 8u);
}

TEST(TopologyConfig, FlatKeepsLegacyBehaviour)
{
    SchedulerConfig c;
    c.topology = "flat";
    LocalityScheduler sched(c);
    EXPECT_EQ(sched.topologyTree(), nullptr);
    EXPECT_FALSE(sched.stats().topology.active);
}

TEST(TopologyConfig, BadSpecThrowsConfigError)
{
    SchedulerConfig c;
    c.topology = "3x3";
    EXPECT_THROW(LocalityScheduler{c}, lsched::ConfigError);
}

TEST(TopologyConfig, EnvOverrideOnlyAppliesToAuto)
{
    ASSERT_EQ(::setenv("LSCHED_TOPOLOGY", "1x2x2x1/l2=64K", 1), 0);
    {
        SchedulerConfig c;
        c.topology = "auto";
        LocalityScheduler sched(c);
        ASSERT_NE(sched.topologyTree(), nullptr);
        EXPECT_EQ(sched.topologyTree()->cpus(), 4u);
        EXPECT_EQ(sched.topologyTree()->source(), TopologySource::Spec);
    }
    {
        // An explicit config value beats the env.
        SchedulerConfig c;
        c.topology = "flat";
        LocalityScheduler sched(c);
        EXPECT_EQ(sched.topologyTree(), nullptr);
    }
    // An invalid env spec falls back to discovery (or flat) without
    // throwing — the env must never take a working program down.
    ASSERT_EQ(::setenv("LSCHED_TOPOLOGY", "garbage", 1), 0);
    {
        SchedulerConfig c;
        c.topology = "auto";
        EXPECT_NO_THROW(LocalityScheduler{c});
    }
    ASSERT_EQ(::unsetenv("LSCHED_TOPOLOGY"), 0);
}

TEST(TopologyConfig, TopologyKeyValidatesAtApplyTime)
{
    SchedulerConfig c;
    std::string error;
    EXPECT_TRUE(lsched::threads::applyConfigKey(c, "topology", "flat",
                                                &error));
    EXPECT_EQ(c.topology, "flat");
    EXPECT_TRUE(lsched::threads::applyConfigKey(
        c, "topology", "2x1x2x1/l2=1M", &error));
    EXPECT_FALSE(lsched::threads::applyConfigKey(c, "topology",
                                                 "not-a-spec", &error));
    EXPECT_FALSE(error.empty());
    std::string value;
    EXPECT_TRUE(
        lsched::threads::configKeyValue(c, "topology", &value));
    EXPECT_EQ(value, "2x1x2x1/l2=1M");
}

TEST(TopologyConfig, EveryConfigKeySurvivesSetGetSet)
{
    // The full C-surface round-trip: read each key, feed the value
    // straight back through th_configure, and read it again — the
    // formatted value must reproduce itself for every key in the
    // table (th_config_get's contract).
    char buf[256];
    for (const std::string &key : lsched::threads::configKeys()) {
        const int len =
            th_config_get(key.c_str(), buf, sizeof(buf));
        ASSERT_GE(len, 0) << key;
        ASSERT_LT(static_cast<std::size_t>(len), sizeof(buf)) << key;
        const std::string first(buf);
        ASSERT_EQ(th_configure(key.c_str(), first.c_str()), 0)
            << key << "='" << first << "': " << th_last_error();
        ASSERT_GE(th_config_get(key.c_str(), buf, sizeof(buf)), 0)
            << key;
        EXPECT_EQ(std::string(buf), first) << key;
    }
}

TEST(TopologyConfig, CamelCaseAliasReachesEveryKey)
{
    // The naming audit kept the pre-audit camelCase spellings live as
    // read/write aliases. Derive each key's alias mechanically
    // (underscore-fold is the inverse of canonicalConfigKey) and
    // repeat the set->get->set round-trip through the alias alone.
    char buf[256];
    for (const std::string &key : lsched::threads::configKeys()) {
        std::string alias;
        bool upper = false;
        for (const char ch : key) {
            if (ch == '_') {
                upper = true;
                continue;
            }
            alias += upper ? static_cast<char>(std::toupper(
                                 static_cast<unsigned char>(ch)))
                           : ch;
            upper = false;
        }
        ASSERT_EQ(lsched::threads::canonicalConfigKey(alias), key)
            << alias;
        const int len = th_config_get(alias.c_str(), buf, sizeof(buf));
        ASSERT_GE(len, 0) << alias;
        const std::string value(buf);
        ASSERT_EQ(th_configure(alias.c_str(), value.c_str()), 0)
            << alias << "='" << value << "': " << th_last_error();
        ASSERT_GE(th_config_get(key.c_str(), buf, sizeof(buf)), 0)
            << key;
        EXPECT_EQ(std::string(buf), value) << alias;
    }
}

namespace
{
std::atomic<int> g_runs[64];

void
countRun(void *arg1, void *)
{
    const std::size_t idx =
        reinterpret_cast<std::uintptr_t>(arg1) % 64;
    g_runs[idx].fetch_add(1, std::memory_order_relaxed);
}
} // namespace

TEST(TopologyParallel, ForcedSpecRunsEveryThreadExactlyOnce)
{
    SchedulerConfig c;
    c.dims = 1;
    c.cacheBytes = 0; // derived from the spec's L2
    c.blockBytes = 4096;
    c.placement = lsched::threads::PlacementKind::Hierarchical;
    c.superBinFan = 0; // derived: 2
    c.topology = "1x2x2x1/l2=64K";
    c.pinWorkers = true; // pin failures must degrade gracefully
    LocalityScheduler sched(c);

    static double slabs[64][512];
    constexpr int kThreads = 64;
    for (int i = 0; i < kThreads; ++i) {
        g_runs[i].store(0, std::memory_order_relaxed);
        sched.fork(countRun, reinterpret_cast<void *>(
                                 static_cast<std::uintptr_t>(i)),
                   nullptr, lsched::threads::hintOf(&slabs[i % 16]));
    }
    const std::uint64_t executed = sched.runParallel(4, false);
    EXPECT_EQ(executed, static_cast<std::uint64_t>(kThreads));
    for (int i = 0; i < kThreads; ++i)
        EXPECT_EQ(g_runs[i].load(std::memory_order_relaxed), 1) << i;

    const auto stats = sched.stats();
    // The tour partitioned over the forced tree's 4 L2 groups.
    EXPECT_EQ(stats.topology.domains, 4u);
    EXPECT_EQ(stats.topology.domainWorkers, 1u);
}

} // namespace
