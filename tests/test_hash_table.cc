/** @file Unit tests for the bin hash table. */

#include <gtest/gtest.h>

#include "threads/hash_table.hh"

namespace
{

using namespace lsched::threads;

BlockCoords
coords(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0)
{
    BlockCoords k{};
    k[0] = a;
    k[1] = b;
    k[2] = c;
    return k;
}

TEST(BinTable, CreateOnFirstUse)
{
    BinTable t(3, 16);
    auto [bin, created] = t.findOrCreate(coords(1, 2, 3));
    EXPECT_TRUE(created);
    EXPECT_NE(bin, nullptr);
    EXPECT_EQ(t.binCount(), 1u);
}

TEST(BinTable, SameCoordsSameBin)
{
    BinTable t(3, 16);
    Bin *a = t.findOrCreate(coords(1, 2, 3)).first;
    auto [b, created] = t.findOrCreate(coords(1, 2, 3));
    EXPECT_FALSE(created);
    EXPECT_EQ(a, b);
    EXPECT_EQ(t.binCount(), 1u);
}

TEST(BinTable, DifferentCoordsDifferentBins)
{
    BinTable t(3, 16);
    Bin *a = t.findOrCreate(coords(1, 2, 3)).first;
    Bin *b = t.findOrCreate(coords(3, 2, 1)).first;
    EXPECT_NE(a, b);
    EXPECT_EQ(t.binCount(), 2u);
}

TEST(BinTable, FindWithoutCreating)
{
    BinTable t(3, 16);
    EXPECT_EQ(t.find(coords(9)), nullptr);
    Bin *a = t.findOrCreate(coords(9)).first;
    EXPECT_EQ(t.find(coords(9)), a);
    EXPECT_EQ(t.binCount(), 1u);
}

TEST(BinTable, CollisionsChainCorrectly)
{
    // A deliberately undersized table must keep lookups resolving by
    // full coordinates while it grows; probe sequences stay short
    // because growth holds the load under 3/4.
    BinTable t(3, 1);
    std::vector<Bin *> bins;
    for (std::uint64_t i = 0; i < 50; ++i)
        bins.push_back(t.findOrCreate(coords(i, i * 7, i * 13)).first);
    EXPECT_EQ(t.binCount(), 50u);
    EXPECT_GE(t.bucketCount(), 64u);
    EXPECT_LE(t.maxChainLength(), 16u);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(t.find(coords(i, i * 7, i * 13)), bins[i]);
}

TEST(BinTable, BucketCountRoundsUpToPowerOfTwo)
{
    BinTable t(3, 100);
    EXPECT_EQ(t.bucketCount(), 128u);
}

TEST(BinTable, LargerTableSpreadsChains)
{
    BinTable big(3, 4096);
    for (std::uint64_t i = 0; i < 1000; ++i)
        big.findOrCreate(coords(i, i + 1, i + 2));
    // With decent hashing, 1000 bins over 4096 slots should probe
    // only a handful deep.
    EXPECT_LE(big.maxChainLength(), 32u);
}

TEST(BinTable, ClearDropsBins)
{
    BinTable t(3, 16);
    t.findOrCreate(coords(1));
    t.clear();
    EXPECT_EQ(t.binCount(), 0u);
    EXPECT_EQ(t.find(coords(1)), nullptr);
}

TEST(BinTable, StableBinAddresses)
{
    // Bins must not move when more bins are created (groups and the
    // ready list hold raw pointers).
    BinTable t(3, 4);
    Bin *first = t.findOrCreate(coords(0)).first;
    first->threadCount = 42;
    for (std::uint64_t i = 1; i < 2000; ++i)
        t.findOrCreate(coords(i, i, i));
    EXPECT_EQ(t.find(coords(0)), first);
    EXPECT_EQ(first->threadCount, 42u);
}

TEST(BinTable, DimsLimitComparison)
{
    // With dims == 1 only the first coordinate identifies a bin.
    BinTable t(1, 16);
    Bin *a = t.findOrCreate(coords(5, 1, 1)).first;
    Bin *b = t.findOrCreate(coords(5, 2, 2)).first;
    EXPECT_EQ(a, b);
}

} // namespace
