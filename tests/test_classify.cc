/** @file Unit tests for three-C miss classification. */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "cachesim/classify.hh"
#include "support/prng.hh"

namespace
{

using lsched::cachesim::Cache;
using lsched::cachesim::MissClassifier;
using lsched::cachesim::MissKind;

TEST(MissClassifier, FirstTouchIsCompulsory)
{
    MissClassifier c(4);
    EXPECT_EQ(c.observe(10, true), MissKind::Compulsory);
}

TEST(MissClassifier, RepeatWithinCapacityIsConflict)
{
    // The shadow still holds the line, so a real-cache miss can only
    // be due to limited associativity.
    MissClassifier c(4);
    c.observe(1, true);
    EXPECT_EQ(c.observe(1, true), MissKind::Conflict);
}

TEST(MissClassifier, RepeatBeyondCapacityIsCapacity)
{
    MissClassifier c(2);
    c.observe(1, true);
    c.observe(2, true);
    c.observe(3, true); // evicts 1 from the shadow
    EXPECT_EQ(c.observe(1, true), MissKind::Capacity);
}

TEST(MissClassifier, HitsKeepShadowInSync)
{
    MissClassifier c(2);
    c.observe(1, true);
    c.observe(2, true);
    c.observe(1, false); // hit: 1 becomes shadow-MRU
    c.observe(3, true);  // evicts 2, not 1
    EXPECT_EQ(c.observe(1, true), MissKind::Conflict);
    EXPECT_EQ(c.observe(2, true), MissKind::Capacity);
}

TEST(MissClassifier, ClearForgetsHistory)
{
    MissClassifier c(2);
    c.observe(1, true);
    c.clear();
    EXPECT_EQ(c.observe(1, true), MissKind::Compulsory);
}

/**
 * End-to-end in a Cache: a direct-mapped cache where two hot lines
 * collide must report conflict misses; a working set larger than the
 * cache must report capacity misses.
 */
TEST(ClassifiedCache, ConflictPattern)
{
    // 2 lines, direct-mapped: lines 0 and 2 collide in set 0.
    Cache cache({"c", 128, 64, 1}, true);
    cache.accessLine(0, false); // compulsory
    cache.accessLine(2, false); // compulsory
    for (int i = 0; i < 10; ++i) {
        cache.accessLine(0, false);
        cache.accessLine(2, false);
    }
    const auto &s = cache.stats();
    EXPECT_EQ(s.compulsoryMisses, 2u);
    EXPECT_EQ(s.capacityMisses, 0u);
    EXPECT_EQ(s.conflictMisses, 20u);
}

TEST(ClassifiedCache, CapacityPattern)
{
    // Fully-associative 2-line cache, cyclic 3-line working set:
    // every miss after the first touches is a pure capacity miss.
    Cache cache({"c", 128, 64, 0}, true);
    for (int rep = 0; rep < 5; ++rep) {
        cache.accessLine(0, false);
        cache.accessLine(1, false);
        cache.accessLine(2, false);
    }
    const auto &s = cache.stats();
    EXPECT_EQ(s.compulsoryMisses, 3u);
    EXPECT_EQ(s.conflictMisses, 0u);
    EXPECT_EQ(s.capacityMisses, s.misses - 3u);
    EXPECT_EQ(s.misses, 15u); // LRU thrashes on a cyclic pattern
}

TEST(ClassifiedCache, SequentialStreamIsAllCompulsory)
{
    Cache cache({"c", 1024, 64, 2}, true);
    for (std::uint64_t l = 0; l < 1000; ++l)
        cache.accessLine(l, false);
    const auto &s = cache.stats();
    EXPECT_EQ(s.misses, 1000u);
    EXPECT_EQ(s.compulsoryMisses, 1000u);
    EXPECT_EQ(s.capacityMisses, 0u);
    EXPECT_EQ(s.conflictMisses, 0u);
}

TEST(ClassifiedCache, ClassCountsSumToMisses)
{
    Cache cache({"c", 512, 64, 2}, true);
    lsched::Prng prng(7);
    for (int i = 0; i < 50000; ++i)
        cache.accessLine(prng.nextBelow(64), i % 3 == 0);
    const auto &s = cache.stats();
    EXPECT_EQ(s.compulsoryMisses + s.capacityMisses + s.conflictMisses,
              s.misses);
}

} // namespace
