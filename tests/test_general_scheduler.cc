/** @file Unit tests for the general-purpose (fiber) scheduler. */

#include <gtest/gtest.h>

#include <vector>

#include "fibers/general_scheduler.hh"
#include "support/error.hh"

namespace
{

using namespace lsched::fibers;
using lsched::threads::Hint;

struct Log
{
    std::vector<int> order;
};

TEST(GeneralScheduler, RunsAllFibers)
{
    GeneralScheduler sched;
    int count = 0;
    for (int i = 0; i < 100; ++i)
        sched.fork([](void *arg) { ++*static_cast<int *>(arg); },
                   &count);
    EXPECT_EQ(sched.liveFibers(), 100u);
    EXPECT_EQ(sched.run(), 100u);
    EXPECT_EQ(count, 100);
    EXPECT_EQ(sched.liveFibers(), 0u);
}

TEST(GeneralScheduler, LocalityBinsClusterExecution)
{
    GeneralSchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = 1 << 16;
    GeneralScheduler sched(cfg);
    static Log log;
    log.order.clear();

    // Interleave forks into two far-apart blocks; execution must
    // cluster by block, in fork order within a block.
    for (int i = 0; i < 6; ++i) {
        const bool far = i % 2;
        struct Tag
        {
            int value;
        };
        static Tag tags[6];
        tags[i].value = i;
        sched.fork(
            [](void *arg) {
                log.order.push_back(static_cast<Tag *>(arg)->value);
            },
            &tags[i], far ? (64u << 16) : 0);
    }
    sched.run();
    EXPECT_EQ(log.order, (std::vector<int>{0, 2, 4, 1, 3, 5}));
    EXPECT_EQ(sched.binCount(), 2u);
}

TEST(GeneralScheduler, FifoModeRunsInForkOrder)
{
    GeneralSchedulerConfig cfg;
    cfg.locality = false;
    GeneralScheduler sched(cfg);
    static Log log;
    log.order.clear();
    static int tags[6] = {0, 1, 2, 3, 4, 5};
    for (int i = 0; i < 6; ++i) {
        sched.fork(
            [](void *arg) {
                log.order.push_back(*static_cast<int *>(arg));
            },
            &tags[i], static_cast<Hint>((i % 2) * (64u << 20)));
    }
    sched.run();
    EXPECT_EQ(log.order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(GeneralScheduler, YieldInterleavesWithinBin)
{
    GeneralScheduler sched;
    static Log log;
    log.order.clear();
    static int tags[2] = {1, 2};
    for (int i = 0; i < 2; ++i) {
        sched.fork(
            [](void *arg) {
                const int tag = *static_cast<int *>(arg);
                log.order.push_back(tag);
                GeneralScheduler::yield();
                log.order.push_back(tag + 10);
            },
            &tags[i]);
    }
    sched.run();
    // Both fibers run their first half, then their second half.
    EXPECT_EQ(log.order, (std::vector<int>{1, 2, 11, 12}));
}

TEST(GeneralScheduler, EventBlocksUntilSignalled)
{
    GeneralScheduler sched;
    static Log log;
    log.order.clear();
    static Event event;
    event.reset();

    sched.fork([](void *) {
        log.order.push_back(1);
        event.wait();
        log.order.push_back(3);
    },
               nullptr);
    sched.fork([](void *) {
        log.order.push_back(2);
        event.signal();
        log.order.push_back(21);
    },
               nullptr);
    EXPECT_EQ(sched.run(), 2u);
    EXPECT_EQ(log.order, (std::vector<int>{1, 2, 21, 3}));
}

TEST(GeneralScheduler, LatchedEventDoesNotBlock)
{
    GeneralScheduler sched;
    static Event event;
    event.reset();
    static bool ran = false;
    ran = false;
    sched.fork([](void *) { event.signal(); }, nullptr);
    sched.run();
    sched.fork([](void *) {
        event.wait(); // already signalled: no block
        ran = true;
    },
               nullptr);
    sched.run();
    EXPECT_TRUE(ran);
}

TEST(GeneralScheduler, StacksAreRecycledAcrossRuns)
{
    GeneralScheduler sched;
    auto noop = [](void *) {};
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 50; ++i)
            sched.fork(noop, nullptr);
        sched.run();
    }
    // Sequential execution of run-to-completion bodies needs 1 stack.
    EXPECT_LE(sched.stacksAllocated(), 2u);
}

TEST(GeneralScheduler, ManyFibersWithYields)
{
    GeneralScheduler sched;
    static int counter;
    counter = 0;
    for (int i = 0; i < 2000; ++i) {
        sched.fork(
            [](void *) {
                GeneralScheduler::yield();
                ++counter;
                GeneralScheduler::yield();
                ++counter;
            },
            nullptr);
    }
    EXPECT_EQ(sched.run(), 2000u);
    EXPECT_EQ(counter, 4000);
}

TEST(GeneralSchedulerMisuse, DeadlockThrows)
{
    GeneralScheduler sched;
    static Event never;
    never.reset();
    sched.fork([](void *) { never.wait(); }, nullptr);
    EXPECT_THROW(sched.run(), lsched::UsageError);
    // The throw reset the scheduler to an empty, reusable state.
    EXPECT_EQ(sched.liveFibers(), 0u);
    static int ran = 0;
    sched.fork([](void *) { ++ran; }, nullptr);
    EXPECT_EQ(sched.run(), 1u);
    EXPECT_EQ(ran, 1);
}

} // namespace
