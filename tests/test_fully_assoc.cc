/** @file Unit tests for the fully-associative LRU line store. */

#include <gtest/gtest.h>

#include <vector>

#include "cachesim/fully_assoc.hh"
#include "support/prng.hh"

namespace
{

using lsched::Prng;
using lsched::cachesim::FullyAssocLru;

TEST(FullyAssocLru, MissThenHit)
{
    FullyAssocLru lru(4);
    EXPECT_FALSE(lru.access(7));
    EXPECT_TRUE(lru.access(7));
    EXPECT_EQ(lru.size(), 1u);
}

TEST(FullyAssocLru, EvictsLeastRecentlyUsed)
{
    FullyAssocLru lru(3);
    lru.access(1);
    lru.access(2);
    lru.access(3);
    lru.access(1);      // order (MRU..LRU): 1 3 2
    lru.access(4);      // evicts 2
    EXPECT_TRUE(lru.contains(1));
    EXPECT_TRUE(lru.contains(3));
    EXPECT_TRUE(lru.contains(4));
    EXPECT_FALSE(lru.contains(2));
    EXPECT_EQ(lru.size(), 3u);
}

TEST(FullyAssocLru, CapacityOneThrashes)
{
    FullyAssocLru lru(1);
    EXPECT_FALSE(lru.access(1));
    EXPECT_FALSE(lru.access(2));
    EXPECT_FALSE(lru.access(1));
    EXPECT_TRUE(lru.access(1));
}

TEST(FullyAssocLru, ContainsDoesNotPromote)
{
    FullyAssocLru lru(2);
    lru.access(1);
    lru.access(2); // MRU=2, LRU=1
    EXPECT_TRUE(lru.contains(1));
    lru.access(3); // must evict 1, not 2
    EXPECT_FALSE(lru.contains(1));
    EXPECT_TRUE(lru.contains(2));
}

TEST(FullyAssocLru, ClearEmpties)
{
    FullyAssocLru lru(4);
    lru.access(1);
    lru.access(2);
    lru.clear();
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_FALSE(lru.access(1));
}

/**
 * Property: FullyAssocLru must agree with a naive reference LRU
 * implementation on a random access stream.
 */
TEST(FullyAssocLru, MatchesReferenceModelOnRandomStream)
{
    const std::uint64_t capacity = 16;
    FullyAssocLru lru(capacity);
    std::vector<std::uint64_t> ref; // front = MRU

    Prng prng(2024);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t line = prng.nextBelow(40);
        // Reference model.
        bool ref_hit = false;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (ref[i] == line) {
                ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
                ref_hit = true;
                break;
            }
        }
        ref.insert(ref.begin(), line);
        if (ref.size() > capacity)
            ref.pop_back();

        ASSERT_EQ(lru.access(line), ref_hit) << "step " << step;
        ASSERT_EQ(lru.size(), ref.size());
    }
}

} // namespace
