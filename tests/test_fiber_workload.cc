/**
 * @file End-to-end: the general-purpose fiber package runs the
 * paper's threaded matrix multiply correctly — the demonstration
 * Section 7 asks for ("whether the scheduling algorithm can be ...
 * implemented with a general-purpose thread package").
 */

#include <gtest/gtest.h>

#include "fibers/general_scheduler.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched;
using namespace lsched::fibers;
using namespace lsched::workloads;

struct DotJob
{
    const Matrix *at;
    const Matrix *b;
    Matrix *c;
    std::size_t i;
    std::size_t j;
    bool yield_midway;
};

void
dotFiber(void *arg)
{
    auto *job = static_cast<DotJob *>(arg);
    const std::size_t n = job->at->rows();
    double sum = 0;
    for (std::size_t k = 0; k < n; ++k) {
        if (job->yield_midway && k == n / 2)
            GeneralScheduler::yield();
        sum += (*job->at)(k, job->i) * (*job->b)(k, job->j);
    }
    (*job->c)(job->i, job->j) = sum;
}

Matrix
reference(const Matrix &a, const Matrix &b)
{
    const std::size_t n = a.rows();
    Matrix c(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0;
            for (std::size_t k = 0; k < n; ++k)
                s += a(i, k) * b(k, j);
            c(i, j) = s;
        }
    return c;
}

class FiberMatmul : public ::testing::TestWithParam<bool>
{
};

TEST_P(FiberMatmul, ComputesCorrectProduct)
{
    const bool yield_midway = GetParam();
    const std::size_t n = 24;
    Matrix a(n, n), b(n, n), c(n, n), at(n, n);
    randomize(a, 1);
    randomize(b, 2);
    NativeModel nm;
    transpose(a, at, nm);

    GeneralSchedulerConfig cfg;
    cfg.dims = 2;
    cfg.blockBytes = 2048;
    GeneralScheduler sched(cfg);

    std::vector<DotJob> jobs;
    jobs.reserve(n * n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            jobs.push_back({&at, &b, &c, i, j, yield_midway});
    for (auto &job : jobs) {
        sched.fork(&dotFiber, &job,
                   threads::hintOf(at.col(job.i)),
                   threads::hintOf(b.col(job.j)));
    }
    EXPECT_EQ(sched.run(), n * n);

    const Matrix ref = reference(a, b);
    EXPECT_LT(c.maxAbsDiff(ref), 1e-9 * static_cast<double>(n));
    EXPECT_GT(sched.binCount(), 1u);
}

INSTANTIATE_TEST_SUITE_P(RunToCompletionAndYielding, FiberMatmul,
                         ::testing::Bool());

TEST(FiberMatmul, ProducerConsumerViaEvents)
{
    // Dependencies the run-to-completion package cannot express
    // (paper Section 6): consumers wait for a producer's event.
    GeneralScheduler sched;
    static double shared_value;
    static Event produced;
    static double results[8];
    shared_value = 0;
    produced.reset();

    for (int i = 0; i < 8; ++i) {
        static int indices[8];
        indices[i] = i;
        sched.fork(
            [](void *arg) {
                const int idx = *static_cast<int *>(arg);
                produced.wait();
                results[idx] = shared_value * (idx + 1);
            },
            &indices[i]);
    }
    sched.fork(
        [](void *) {
            shared_value = 6.5;
            produced.signal();
        },
        nullptr);
    EXPECT_EQ(sched.run(), 9u);
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(results[i], 6.5 * (i + 1));
}

} // namespace
