/**
 * @file Property-based tests of the scheduler invariants, swept over
 * configurations with parameterized gtest and randomized fork streams.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "support/prng.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

struct ParamCase
{
    unsigned dims;
    std::uint64_t blockBytes;
    std::size_t hashBuckets;
    std::uint32_t groupCapacity;
    bool symmetric;
};

class SchedulerProperty : public ::testing::TestWithParam<ParamCase>
{
};

/** Execution record: (thread tag) in run order. */
struct Trace
{
    std::vector<std::uint64_t> order;

    static void
    record(void *self, void *tag)
    {
        static_cast<Trace *>(self)->order.push_back(
            reinterpret_cast<std::uintptr_t>(tag));
    }
};

TEST_P(SchedulerProperty, EveryForkRunsOnceAndBinsAreContiguous)
{
    const ParamCase pc = GetParam();
    SchedulerConfig cfg;
    cfg.dims = pc.dims;
    cfg.cacheBytes = pc.blockBytes * pc.dims;
    cfg.blockBytes = pc.blockBytes;
    cfg.hashBuckets = pc.hashBuckets;
    cfg.groupCapacity = pc.groupCapacity;
    cfg.symmetricHints = pc.symmetric;
    LocalityScheduler sched(cfg);

    lsched::Prng prng(pc.dims * 1000003 + pc.blockBytes);
    const std::size_t n_threads = 2000;
    Trace trace;
    std::vector<BlockCoords> coords_of(n_threads);

    for (std::uint64_t t = 0; t < n_threads; ++t) {
        Hint hints[kMaxDims] = {};
        for (unsigned d = 0; d < pc.dims; ++d)
            hints[d] = prng.nextBelow(pc.blockBytes * 8);
        std::span<const Hint> span(hints, pc.dims);
        coords_of[t] = sched.coordsFor(span);
        sched.fork(&Trace::record, &trace,
                   reinterpret_cast<void *>(t), span);
    }

    // Invariant: occupancy over ready bins sums to pending threads.
    const auto occupancy = sched.binOccupancy();
    std::uint64_t total = 0;
    for (auto c : occupancy)
        total += c;
    EXPECT_EQ(total, n_threads);

    // Invariant: bin count equals the number of distinct coordinates.
    std::map<BlockCoords, std::uint64_t> groups;
    for (const auto &c : coords_of)
        ++groups[c];
    EXPECT_EQ(sched.binCount(), groups.size());

    EXPECT_EQ(sched.run(), n_threads);

    // Invariant: a permutation — every tag exactly once.
    ASSERT_EQ(trace.order.size(), n_threads);
    std::vector<bool> seen(n_threads, false);
    for (auto tag : trace.order) {
        ASSERT_LT(tag, n_threads);
        ASSERT_FALSE(seen[tag]);
        seen[tag] = true;
    }

    // Invariant: threads sharing block coordinates run contiguously
    // (the "cluster property" of Section 2.3), in fork order.
    std::map<BlockCoords, std::uint64_t> remaining = groups;
    std::map<BlockCoords, std::uint64_t> last_tag;
    BlockCoords current{};
    bool have_current = false;
    for (auto tag : trace.order) {
        const BlockCoords &c = coords_of[tag];
        if (!have_current || !(c == current)) {
            // Entering a bin: it must be untouched so far.
            EXPECT_EQ(remaining[c], groups[c])
                << "bin re-entered after being left";
            current = c;
            have_current = true;
        }
        if (auto it = last_tag.find(c); it != last_tag.end()) {
            EXPECT_LT(it->second, tag) << "fork order violated";
        }
        last_tag[c] = tag;
        --remaining[c];
    }
    for (const auto &[c, count] : remaining)
        EXPECT_EQ(count, 0u);
}

TEST_P(SchedulerProperty, KeepRunIsIdempotentOnOrder)
{
    const ParamCase pc = GetParam();
    SchedulerConfig cfg;
    cfg.dims = pc.dims;
    cfg.blockBytes = pc.blockBytes;
    cfg.hashBuckets = pc.hashBuckets;
    cfg.groupCapacity = pc.groupCapacity;
    cfg.symmetricHints = pc.symmetric;
    LocalityScheduler sched(cfg);

    lsched::Prng prng(99);
    Trace trace;
    const std::size_t n_threads = 300;
    for (std::uint64_t t = 0; t < n_threads; ++t) {
        Hint hints[kMaxDims] = {};
        for (unsigned d = 0; d < pc.dims; ++d)
            hints[d] = prng.nextBelow(pc.blockBytes * 4);
        sched.fork(&Trace::record, &trace, reinterpret_cast<void *>(t),
                   std::span<const Hint>(hints, pc.dims));
    }
    sched.run(true);
    sched.run(true);
    ASSERT_EQ(trace.order.size(), 2 * n_threads);
    for (std::size_t i = 0; i < n_threads; ++i)
        EXPECT_EQ(trace.order[i], trace.order[i + n_threads]);
    sched.clear();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerProperty,
    ::testing::Values(ParamCase{1, 4096, 64, 8, false},
                      ParamCase{2, 4096, 64, 8, false},
                      ParamCase{2, 4096, 1, 1, false},
                      ParamCase{2, 1000, 64, 8, false},
                      ParamCase{2, 65536, 16, 64, true},
                      ParamCase{3, 4096, 64, 8, false},
                      ParamCase{3, 4096, 2048, 256, true},
                      ParamCase{4, 8192, 128, 16, false},
                      ParamCase{8, 4096, 64, 8, false},
                      ParamCase{8, 4096, 64, 3, true}));

} // namespace
