/** @file Unit tests for the crude timing model against the paper's
 *  own arithmetic. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "machine/timing_model.hh"

namespace
{

using namespace lsched::machine;

TEST(TimingModel, PureInstructionTime)
{
    const MachineConfig m = powerIndigo2R8000();
    ExecutionProfile p;
    p.instructions = 75000000; // one second of 1-IPC work at 75 MHz
    EXPECT_NEAR(estimateSeconds(m, p), 1.0, 1e-9);
}

TEST(TimingModel, L2MissCostMatchesTable1)
{
    // Table 1: an L2 miss costs 1.06 us on the R8000.
    const MachineConfig m = powerIndigo2R8000();
    ExecutionProfile p;
    p.l2Misses = 1000000;
    EXPECT_NEAR(estimateSeconds(m, p), 1.06, 1e-9);
}

TEST(TimingModel, L1MissCostIsSevenCycles)
{
    const MachineConfig m = powerIndigo2R8000();
    ExecutionProfile p;
    p.l1Misses = 75000000 / 7;
    EXPECT_NEAR(estimateSeconds(m, p), 1.0, 1e-6);
}

TEST(TimingModel, PaperSection42CrudeEstimate)
{
    // Section 4.2: the untiled-vs-tiled delta on the R8000 — 193M L1
    // misses (7 cycles each) plus 67.5M L2 misses (1.06 us) should be
    // "about 83 seconds".
    const MachineConfig m = powerIndigo2R8000();
    ExecutionProfile delta;
    delta.l1Misses = 193000000;
    delta.l2Misses = 67500000;
    const double saved = estimateSeconds(m, delta);
    EXPECT_NEAR(saved, 83.0, 8.0);
}

TEST(TimingModel, ProfileOfHierarchy)
{
    lsched::cachesim::HierarchyConfig cfg;
    cfg.l1i = {"L1I", 1024, 32, 1};
    cfg.l1d = {"L1D", 1024, 32, 1};
    cfg.l2 = {"L2", 8192, 128, 4};
    lsched::cachesim::Hierarchy h(cfg);
    h.load(0, 8);         // L1D miss + L2 miss
    h.ifetch(0x1000, 4);  // L1I miss + L2 miss
    h.countIFetches(98);
    const ExecutionProfile p = profileOf(h);
    EXPECT_EQ(p.instructions, 99u);
    EXPECT_EQ(p.l1Misses, 2u);
    EXPECT_EQ(p.l2Misses, 2u);
}

TEST(TimingModel, FasterMachineRunsFaster)
{
    ExecutionProfile p;
    p.instructions = 1000000000;
    p.l1Misses = 10000000;
    p.l2Misses = 1000000;
    const double t8k = estimateSeconds(powerIndigo2R8000(), p);
    const double t10k = estimateSeconds(indigo2ImpactR10000(), p);
    EXPECT_LT(t10k, t8k);
}

} // namespace
