/** @file Unit tests for support/align.hh. */

#include <gtest/gtest.h>

#include "support/align.hh"

namespace
{

using namespace lsched;

TEST(Align, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
}

TEST(Align, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 63), 63u);
}

TEST(Align, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
}

TEST(Align, RoundUpPowerOfTwo)
{
    EXPECT_EQ(roundUpPowerOfTwo(0), 1u);
    EXPECT_EQ(roundUpPowerOfTwo(1), 1u);
    EXPECT_EQ(roundUpPowerOfTwo(3), 4u);
    EXPECT_EQ(roundUpPowerOfTwo(4), 4u);
    EXPECT_EQ(roundUpPowerOfTwo(1000), 1024u);
}

TEST(Align, RoundDownPowerOfTwo)
{
    EXPECT_EQ(roundDownPowerOfTwo(1), 1u);
    EXPECT_EQ(roundDownPowerOfTwo(3), 2u);
    EXPECT_EQ(roundDownPowerOfTwo(1023), 512u);
    EXPECT_EQ(roundDownPowerOfTwo(1024), 1024u);
}

TEST(Align, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(65, 64), 128u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(127, 64), 64u);
}

} // namespace
