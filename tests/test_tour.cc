/** @file Unit tests for bin tour strategies. */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "threads/tour.hh"

namespace
{

using namespace lsched::threads;

std::deque<Bin> storage;

Bin *
bin(std::uint64_t x, std::uint64_t y = 0)
{
    storage.emplace_back();
    storage.back().coords[0] = x;
    storage.back().coords[1] = y;
    return &storage.back();
}

class TourTest : public ::testing::Test
{
  protected:
    void TearDown() override { storage.clear(); }
};

TEST_F(TourTest, CreationOrderIsIdentity)
{
    std::vector<Bin *> bins{bin(3), bin(1), bin(2)};
    const auto t = orderBins(TourPolicy::CreationOrder, bins, 1);
    EXPECT_EQ(t, bins);
}

TEST_F(TourTest, SnakeSorts1D)
{
    std::vector<Bin *> bins{bin(3), bin(1), bin(2)};
    const auto t = orderBins(TourPolicy::SortedSnake, bins, 1);
    EXPECT_EQ(t[0]->coords[0], 1u);
    EXPECT_EQ(t[1]->coords[0], 2u);
    EXPECT_EQ(t[2]->coords[0], 3u);
}

TEST_F(TourTest, SnakeAlternatesRowDirection)
{
    std::vector<Bin *> bins{bin(0, 0), bin(0, 1), bin(1, 0), bin(1, 1)};
    const auto t = orderBins(TourPolicy::SortedSnake, bins, 2);
    // Row 0 ascending, row 1 descending: (0,0) (0,1) (1,1) (1,0).
    EXPECT_EQ(t[0]->coords[1], 0u);
    EXPECT_EQ(t[1]->coords[1], 1u);
    EXPECT_EQ(t[2]->coords[0], 1u);
    EXPECT_EQ(t[2]->coords[1], 1u);
    EXPECT_EQ(t[3]->coords[1], 0u);
    EXPECT_EQ(tourLength(t, 2), 3u); // unit steps only
}

TEST_F(TourTest, AllPoliciesArePermutations)
{
    std::vector<Bin *> bins;
    for (std::uint64_t i = 0; i < 25; ++i)
        bins.push_back(bin(i % 5, (i * 7) % 5));
    for (auto policy :
         {TourPolicy::CreationOrder, TourPolicy::SortedSnake,
          TourPolicy::NearestNeighbor, TourPolicy::Hilbert}) {
        auto t = orderBins(policy, bins, 2);
        ASSERT_EQ(t.size(), bins.size());
        auto sorted_in = bins;
        auto sorted_out = t;
        std::sort(sorted_in.begin(), sorted_in.end());
        std::sort(sorted_out.begin(), sorted_out.end());
        EXPECT_EQ(sorted_in, sorted_out)
            << "policy " << tourPolicyName(policy);
    }
}

TEST_F(TourTest, NearestNeighborBeatsRandomOrderOnGrid)
{
    // A shuffled 8x8 grid: greedy NN must produce a much shorter tour
    // than the shuffled creation order.
    std::vector<Bin *> bins;
    for (std::uint64_t i = 0; i < 64; ++i)
        bins.push_back(bin((i * 37) % 8, (i * 23) % 8));
    const auto creation = orderBins(TourPolicy::CreationOrder, bins, 2);
    const auto nn = orderBins(TourPolicy::NearestNeighbor, bins, 2);
    EXPECT_LT(tourLength(nn, 2), tourLength(creation, 2) / 2);
}

TEST_F(TourTest, HilbertVisitsNeighborsClose)
{
    std::vector<Bin *> bins;
    for (std::uint64_t x = 0; x < 8; ++x)
        for (std::uint64_t y = 0; y < 8; ++y)
            bins.push_back(bin(x, y));
    const auto t = orderBins(TourPolicy::Hilbert, bins, 2);
    // The Hilbert tour over a full grid moves one step at a time.
    EXPECT_EQ(tourLength(t, 2), 63u);
}

TEST_F(TourTest, HilbertFallsBackToSnakeFor3D)
{
    std::vector<Bin *> bins{bin(2, 0), bin(0, 0), bin(1, 0)};
    const auto h = orderBins(TourPolicy::Hilbert, bins, 3);
    const auto s = orderBins(TourPolicy::SortedSnake, bins, 3);
    EXPECT_EQ(h, s);
}

TEST_F(TourTest, TourLengthOfSingleBinIsZero)
{
    std::vector<Bin *> bins{bin(5, 5)};
    EXPECT_EQ(tourLength(bins, 2), 0u);
}

TEST(TourNames, RoundTrip)
{
    for (auto policy :
         {TourPolicy::CreationOrder, TourPolicy::SortedSnake,
          TourPolicy::NearestNeighbor, TourPolicy::Hilbert}) {
        EXPECT_EQ(tourPolicyFromName(tourPolicyName(policy)), policy);
    }
}

TEST(TourNamesDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)tourPolicyFromName("bogus"),
                ::testing::ExitedWithCode(1), "unknown tour");
}

} // namespace
