/**
 * @file
 * Streaming admission (stream.hh / LocalityScheduler::streamBegin):
 * concurrent-fork stress with exactly-once execution and batch-equal
 * bin membership, backpressure bounds, seal epochs, fault policies
 * under drain, and session-lifecycle misuse. The whole binary must
 * stay clean under LSCHED_SANITIZE=thread (ctest -L stream).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/error.hh"
#include "support/failpoint.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

SchedulerConfig
cfg()
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 16;
    c.groupCapacity = 8;
    return c;
}

/** One execution flag per forked thread; counts double-runs too. */
struct Flags
{
    std::vector<std::atomic<std::uint32_t>> ran;

    explicit Flags(std::size_t n) : ran(n) {}

    static void
    mark(void *self, void *index)
    {
        auto *flags = static_cast<Flags *>(self);
        flags->ran[reinterpret_cast<std::uintptr_t>(index)].fetch_add(
            1, std::memory_order_relaxed);
    }
};

/** Hint for thread @p i of producer @p p: a few hundred distinct bins. */
Hint
hintFor(unsigned p, unsigned i)
{
    return static_cast<Hint>(((p * 7919u + i) % 400u) << 16);
}

TEST(Stream, ConcurrentForkStressMatchesBatch)
{
    constexpr unsigned kProducers = 4;
    constexpr unsigned kPerProducer = 5000;
    constexpr unsigned kTotal = kProducers * kPerProducer;

    SchedulerConfig c = cfg();
    c.streamSealThreshold = 64;
    LocalityScheduler s(c);
    Flags flags(kTotal);

    s.streamBegin(2);
    {
        std::vector<std::thread> producers;
        for (unsigned p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (unsigned i = 0; i < kPerProducer; ++i) {
                    const std::uintptr_t index = p * kPerProducer + i;
                    s.fork(&Flags::mark, &flags,
                           reinterpret_cast<void *>(index),
                           hintFor(p, i), 0);
                }
            });
        }
        for (std::thread &t : producers)
            t.join();
    }
    EXPECT_EQ(s.streamEnd(), kTotal);

    // Exactly once: every thread ran, none ran twice.
    for (unsigned i = 0; i < kTotal; ++i)
        ASSERT_EQ(flags.ran[i].load(), 1u) << "thread " << i;

    // Bin membership is identical to what the batch path would have
    // produced: coordsFor() is the same placement both paths use.
    std::map<std::vector<std::uint64_t>, std::uint64_t> expected;
    for (unsigned p = 0; p < kProducers; ++p) {
        for (unsigned i = 0; i < kPerProducer; ++i) {
            const Hint hints[] = {hintFor(p, i), 0};
            const BlockCoords coords = s.coordsFor(hints);
            ++expected[{coords.begin(), coords.end()}];
        }
    }
    std::map<std::vector<std::uint64_t>, std::uint64_t> actual;
    for (const StreamBinReport &bin : s.lastStreamBins())
        actual[{bin.coords.begin(), bin.coords.end()}] += bin.threads;
    EXPECT_EQ(actual, expected);

    const StreamStats st = s.streamStats();
    EXPECT_EQ(st.forked, kTotal);
    EXPECT_EQ(st.executed, kTotal);
    EXPECT_EQ(st.backlog, 0u);
    EXPECT_GE(st.seals, 1u);
}

TEST(Stream, EightProducerAdmissionStress)
{
    // Tentpole stress for the lock-free admission path: eight
    // producers hammer two shards whose tables start at the minimum
    // slot count (so concurrent freeze-growth cycles are forced), a
    // tight maxPending saturates the ticket gate, and a small seal
    // threshold keeps groups recycling through the shared pool.
    constexpr unsigned kProducers = 8;
    constexpr unsigned kPerProducer = 3000;
    constexpr unsigned kTotal = kProducers * kPerProducer;
    constexpr std::uint64_t kBound = 48;

    SchedulerConfig c = cfg();
    c.hashBuckets = 16;
    c.streamShards = 2;
    c.streamMaxPending = kBound;
    c.streamSealThreshold = 4;
    c.groupCapacity = 4;
    LocalityScheduler s(c);
    Flags flags(kTotal);

    s.streamBegin(2);
    {
        std::vector<std::thread> producers;
        for (unsigned p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (unsigned i = 0; i < kPerProducer; ++i) {
                    const std::uintptr_t index = p * kPerProducer + i;
                    // Thousands of distinct bins, interleaved across
                    // producers so insert races hit the same slots.
                    const Hint h = static_cast<Hint>(
                        ((p * kPerProducer + i) % 2048u) << 16);
                    s.fork(&Flags::mark, &flags,
                           reinterpret_cast<void *>(index), h, 0);
                }
            });
        }
        for (std::thread &t : producers)
            t.join();
    }
    EXPECT_EQ(s.streamEnd(), kTotal);

    // Exactly once, across every growth cycle and ticket stall.
    for (unsigned i = 0; i < kTotal; ++i)
        ASSERT_EQ(flags.ran[i].load(), 1u) << "thread " << i;

    // Conservation: admissions, executions, and the per-bin report
    // all account for the same threads; the ticket gate held exactly.
    const StreamStats st = s.streamStats();
    EXPECT_EQ(st.forked, kTotal);
    EXPECT_EQ(st.executed, kTotal);
    EXPECT_EQ(st.backlog, 0u);
    EXPECT_LE(st.peakBacklog, kBound);
    std::uint64_t reported = 0;
    for (const StreamBinReport &bin : s.lastStreamBins())
        reported += bin.threads;
    EXPECT_EQ(reported, kTotal);
}

TEST(Stream, BackpressureBoundHolds)
{
    constexpr std::uint64_t kBound = 64;
    constexpr unsigned kProducers = 2;
    constexpr unsigned kPerProducer = 4000;

    SchedulerConfig c = cfg();
    c.streamMaxPending = kBound;
    c.streamSealThreshold = 16;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    const std::uint64_t executed = s.runStream(
        1, kProducers, [&](unsigned p) {
            for (unsigned i = 0; i < kPerProducer; ++i) {
                s.fork(
                    [](void *counter, void *) {
                        static_cast<std::atomic<std::uint64_t> *>(
                            counter)
                            ->fetch_add(1, std::memory_order_relaxed);
                    },
                    &ran, nullptr, hintFor(p, i), 0);
            }
        });

    EXPECT_EQ(executed, kProducers * kPerProducer);
    EXPECT_EQ(ran.load(), kProducers * kPerProducer);
    // No fork nests here, so the bound is exact, not just a target.
    EXPECT_LE(s.streamStats().peakBacklog, kBound);
}

TEST(Stream, SealThresholdProducesEpochs)
{
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 10;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    s.streamBegin(1);
    for (unsigned i = 0; i < 100; ++i) {
        s.fork(
            [](void *counter, void *) {
                static_cast<std::atomic<std::uint64_t> *>(counter)
                    ->fetch_add(1, std::memory_order_relaxed);
            },
            &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    }
    EXPECT_EQ(s.streamEnd(), 100u);
    EXPECT_EQ(ran.load(), 100u);

    // All 100 threads share one bin; the threshold sealed it in
    // epochs of 10 and every epoch landed back in the same report.
    ASSERT_EQ(s.lastStreamBins().size(), 1u);
    EXPECT_EQ(s.lastStreamBins()[0].threads, 100u);
    EXPECT_GE(s.lastStreamBins()[0].epochs, 10u);
    EXPECT_GE(s.streamStats().seals, 10u);
}

TEST(Stream, SerialBackendDrainsInline)
{
    SchedulerConfig c = cfg();
    c.backend = BackendKind::Serial;
    c.persistentPool = false;
    c.streamSealThreshold = 8;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    s.streamBegin();
    for (unsigned i = 0; i < 500; ++i) {
        s.fork(
            [](void *counter, void *) {
                static_cast<std::atomic<std::uint64_t> *>(counter)
                    ->fetch_add(1, std::memory_order_relaxed);
            },
            &ran, nullptr, hintFor(0, i), 0);
    }
    EXPECT_EQ(s.streamEnd(), 500u);
    EXPECT_EQ(ran.load(), 500u);
    // No helpers existed; everything drained on this thread.
    EXPECT_EQ(s.stats().pool.threadsSpawned, 0u);
}

TEST(Stream, StreamThenBatchReusesTheScheduler)
{
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 16;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};
    const auto bump = [](void *counter, void *) {
        static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
            1, std::memory_order_relaxed);
    };

    EXPECT_EQ(s.runStream(2, 2, [&](unsigned p) {
        for (unsigned i = 0; i < 300; ++i)
            s.fork(bump, &ran, nullptr, hintFor(p, i), 0);
    }), 600u);

    // The batch path still works on the same scheduler afterwards,
    // and vice versa: ids, pools, and stats all survive the switch.
    for (unsigned i = 0; i < 200; ++i)
        s.fork(bump, &ran, nullptr, hintFor(0, i), 0);
    EXPECT_EQ(s.runParallel(2), 200u);
    EXPECT_EQ(ran.load(), 800u);
    EXPECT_EQ(s.stats().executedThreads, 800u);

    EXPECT_EQ(s.runStream(2, 1, [&](unsigned) {
        for (unsigned i = 0; i < 100; ++i)
            s.fork(bump, &ran, nullptr, hintFor(1, i), 0);
    }), 100u);
    EXPECT_EQ(ran.load(), 900u);
}

TEST(Stream, ContinueAndCollectRecordsStreamFaults)
{
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::ContinueAndCollect;
    c.streamSealThreshold = 8;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    const std::uint64_t executed = s.runStream(1, 1, [&](unsigned) {
        for (unsigned i = 0; i < 200; ++i) {
            if (i % 50 == 3) {
                s.fork([](void *, void *) {
                    throw std::runtime_error("stream fault");
                }, nullptr, nullptr, hintFor(0, i), 0);
            } else {
                s.fork(
                    [](void *counter, void *) {
                        static_cast<std::atomic<std::uint64_t> *>(
                            counter)
                            ->fetch_add(1, std::memory_order_relaxed);
                    },
                    &ran, nullptr, hintFor(0, i), 0);
            }
        }
    });

    // Faulted threads are contained and reported, and — exactly as in
    // a batch run — not counted as executed.
    EXPECT_EQ(executed, 196u);
    EXPECT_EQ(ran.load(), 196u);
    EXPECT_EQ(s.streamStats().forked, 200u);
    EXPECT_EQ(s.lastFaultCount(), 4u);
    ASSERT_FALSE(s.lastFaults().empty());
    EXPECT_EQ(s.lastFaults()[0].message, "stream fault");
    EXPECT_EQ(s.stats().faultedThreads, 4u);
}

TEST(Stream, StopTourRethrowsTheFirstStreamFault)
{
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::StopTour;
    c.streamSealThreshold = 4;
    LocalityScheduler s(c);

    s.streamBegin(1);
    for (unsigned i = 0; i < 50; ++i) {
        s.fork([](void *, void *) {
            throw std::runtime_error("first loss");
        }, nullptr, nullptr, hintFor(0, i), 0);
    }
    EXPECT_THROW(s.streamEnd(), std::runtime_error);

    // The session is closed and the scheduler reusable.
    EXPECT_FALSE(s.streaming());
    std::atomic<std::uint64_t> ran{0};
    s.fork(
        [](void *counter, void *) {
            static_cast<std::atomic<std::uint64_t> *>(counter)
                ->fetch_add(1, std::memory_order_relaxed);
        },
        &ran, nullptr, 0, 0);
    EXPECT_EQ(s.run(), 1u);
    EXPECT_EQ(ran.load(), 1u);
}

TEST(Stream, TableGrowthAllocationFailureUnwindsInsteadOfWedging)
{
    if (!lsched::failpoint::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    namespace fp = lsched::failpoint;
    // Regression for the grow() unwind: an OOM while allocating the
    // doubled slot array must surface as a recoverable bad_alloc and
    // leave the table live (slots thawed, grower flag released) — not
    // leave every later probe spinning on frozen sentinels.
    //
    // Deterministic site arithmetic (one producer, one shard, 16
    // slots): bin creations 1..12 each evaluate the probe-path
    // "bintable.grow" site once, and the 12th publish crosses 3/4
    // load, so the growth-path evaluation is hit 13.
    constexpr unsigned kTrigger = 12;
    constexpr unsigned kTotal = 40;
    SchedulerConfig c = cfg();
    c.hashBuckets = 16;
    c.streamShards = 1;
    c.streamMaxPending = 0;
    LocalityScheduler s(c);
    Flags flags(kTotal);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("bintable.grow", "hit=13"));

    const auto forkIndex = [&](unsigned i) {
        s.fork(&Flags::mark, &flags,
               reinterpret_cast<void *>(static_cast<std::uintptr_t>(i)),
               static_cast<Hint>(i) << 16, 0);
    };
    s.streamBegin(1);
    for (unsigned i = 0; i + 1 < kTrigger; ++i)
        forkIndex(i);
    EXPECT_THROW(forkIndex(kTrigger - 1), std::bad_alloc);
    fp::disarmAll();

    // The table survived the failed growth: the interrupted fork
    // retries fine, later creations grow the table for real, and the
    // session closes with exactly-once execution.
    for (unsigned i = kTrigger - 1; i < kTotal; ++i)
        forkIndex(i);
    EXPECT_EQ(s.streamEnd(), kTotal);
    for (unsigned i = 0; i < kTotal; ++i)
        ASSERT_EQ(flags.ran[i].load(), 1u) << "thread " << i;
}

TEST(Stream, AdmissionTimesOutInsteadOfHangingOnAWedgedPool)
{
    if (!lsched::failpoint::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    namespace fp = lsched::failpoint;
    // Satellite regression for the historic unbounded backpressure
    // wait: with the one drain helper wedged mid-bin and the whole
    // backlog in flight, a producer at the bound must surface
    // AdmissionTimeout after its bounded backoff — never hang.
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 2;
    c.streamMaxPending = 2;
    c.streamAdmitRetries = 4;
    LocalityScheduler s(c);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=800"));

    std::atomic<std::uint64_t> ran{0};
    const auto bump = [](void *counter, void *) {
        static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
            1, std::memory_order_relaxed);
    };
    s.streamBegin(1);
    // Two forks fill one bin to the seal threshold; the helper claims
    // the sealed epoch and stalls inside it, holding pending at the
    // bound with nothing left to seal or drain inline. The fail-point
    // hit count is the observable proof the helper entered the stall.
    s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    const auto claimStart = std::chrono::steady_clock::now();
    while (fp::hitCount("sched.bin.execute") == 0 &&
           std::chrono::steady_clock::now() - claimStart <
               std::chrono::seconds(5)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(fp::hitCount("sched.bin.execute"), 1u);

    EXPECT_THROW(
        s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0),
        lsched::AdmissionTimeout);

    const RecoverySnapshot r = s.recoverySnapshot();
    EXPECT_GE(r.admissionRetries, 4u);
    EXPECT_EQ(r.admissionTimeouts, 1u);

    // The stream is still healthy: once the stall clears, the wedged
    // epoch drains and the session closes normally.
    EXPECT_EQ(s.streamEnd(), 2u);
    EXPECT_EQ(ran.load(), 2u);
    fp::disarmAll();
}

TEST(Stream, EpochDeadlineCancelsAWedgedStream)
{
    if (!lsched::failpoint::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    namespace fp = lsched::failpoint;
    // Tentpole: a standing backlog that retires nothing for a whole
    // deadline period is cancelled cooperatively and streamEnd()
    // surfaces DeadlineError (under Abort/StopTour).
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 2;
    c.deadlineMillis = 80;
    LocalityScheduler s(c);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=900"));

    std::atomic<std::uint64_t> ran{0};
    const auto bump = [](void *counter, void *) {
        static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
            1, std::memory_order_relaxed);
    };
    s.streamBegin(1);
    for (int i = 0; i < 4; ++i)
        s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    // Keep the session open past two deadline periods so the monitor
    // can observe the wedged epoch (streamEnd stops the monitor).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_THROW(s.streamEnd(), lsched::DeadlineError);
    fp::disarmAll();

    // Nothing ran (the helper was wedged until after the cancel), and
    // every dropped thread is accounted.
    EXPECT_EQ(ran.load(), 0u);
    const RecoverySnapshot r = s.recoverySnapshot();
    EXPECT_GE(r.deadlines, 1u);
    EXPECT_EQ(r.cancelledThreads, 4u);

    // The scheduler survives: a fresh batch run works immediately.
    EXPECT_FALSE(s.streaming());
    s.fork(bump, &ran, nullptr, 0, 0);
    EXPECT_EQ(s.run(), 1u);
    EXPECT_EQ(ran.load(), 1u);
}

TEST(Stream, EpochDeadlineUnderContinueAndCollectReturnsNormally)
{
    if (!lsched::failpoint::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    namespace fp = lsched::failpoint;
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::ContinueAndCollect;
    c.streamSealThreshold = 2;
    c.deadlineMillis = 80;
    LocalityScheduler s(c);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=900"));

    std::atomic<std::uint64_t> ran{0};
    const auto bump = [](void *counter, void *) {
        static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
            1, std::memory_order_relaxed);
    };
    s.streamBegin(1);
    for (int i = 0; i < 4; ++i)
        s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    // ContinueAndCollect: the cancelled stream closes normally with
    // the dropped threads recorded as contained faults.
    std::uint64_t executed = 0;
    EXPECT_NO_THROW(executed = s.streamEnd());
    fp::disarmAll();
    EXPECT_EQ(executed, ran.load());
    EXPECT_EQ(executed + s.lastFaultCount(), 4u);
    EXPECT_GE(s.recoverySnapshot().deadlines, 1u);
}

TEST(Stream, DegradedStreamShedsLoadAndStopsBlockingProducers)
{
    if (!lsched::failpoint::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    namespace fp = lsched::failpoint;
    // Governor in the stream: with the whole backlog wedged in flight
    // on the one drain helper, the monitor degrades the session and
    // admission overshoots the bound (soft) instead of blocking — even
    // with a retry budget that would otherwise time out. Every thread
    // still runs exactly once.
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 2;
    c.streamMaxPending = 2;
    c.streamAdmitRetries = 2;
    c.overloadEpochs = 2;
    c.recoverEpochs = 1;
    LocalityScheduler s(c);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute", "stall=1200"));

    std::atomic<std::uint64_t> ran{0};
    const auto bump = [](void *counter, void *) {
        static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
            1, std::memory_order_relaxed);
    };
    s.streamBegin(1);
    s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    s.fork(bump, &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    const auto start = std::chrono::steady_clock::now();
    while (fp::hitCount("sched.bin.execute") == 0 &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(5)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(fp::hitCount("sched.bin.execute"), 1u)
        << "helper never claimed the sealed epoch";
    while (s.recoveryState() != RecoveryState::Degraded &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(5)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(s.recoveryState(), RecoveryState::Degraded);
    // Only the already-sleeping helper keeps stalling from here.
    fp::disarmAll();

    // A degraded session admits past the bound without blocking or
    // timing out, while the helper is still wedged.
    for (int i = 0; i < 6; ++i)
        s.fork(bump, &ran, nullptr, static_cast<Hint>(2) << 16, 0);
    EXPECT_GT(s.streamStats().peakBacklog, 2u)
        << "degraded admission must overshoot the bound, not block";
    EXPECT_EQ(s.streamEnd(), 8u);
    EXPECT_EQ(ran.load(), 8u);

    const RecoverySnapshot r = s.recoverySnapshot();
    EXPECT_GE(r.loadSheds, 1u);
    EXPECT_EQ(r.admissionTimeouts, 0u);
}

TEST(Stream, LifecycleMisuseIsReported)
{
    LocalityScheduler s(cfg());
    EXPECT_THROW(s.streamEnd(), lsched::UsageError);

    s.fork([](void *, void *) {}, nullptr, nullptr, 0, 0);
    EXPECT_THROW(s.streamBegin(1), lsched::UsageError);
    s.clear();

    s.streamBegin(1);
    EXPECT_TRUE(s.streaming());
    EXPECT_THROW(s.streamBegin(1), lsched::UsageError);
    EXPECT_THROW(s.run(), lsched::UsageError);
    EXPECT_EQ(s.streamEnd(), 0u);
    EXPECT_FALSE(s.streaming());
}

} // namespace
