/**
 * @file
 * Streaming admission (stream.hh / LocalityScheduler::streamBegin):
 * concurrent-fork stress with exactly-once execution and batch-equal
 * bin membership, backpressure bounds, seal epochs, fault policies
 * under drain, and session-lifecycle misuse. The whole binary must
 * stay clean under LSCHED_SANITIZE=thread (ctest -L stream).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/error.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

SchedulerConfig
cfg()
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 16;
    c.groupCapacity = 8;
    return c;
}

/** One execution flag per forked thread; counts double-runs too. */
struct Flags
{
    std::vector<std::atomic<std::uint32_t>> ran;

    explicit Flags(std::size_t n) : ran(n) {}

    static void
    mark(void *self, void *index)
    {
        auto *flags = static_cast<Flags *>(self);
        flags->ran[reinterpret_cast<std::uintptr_t>(index)].fetch_add(
            1, std::memory_order_relaxed);
    }
};

/** Hint for thread @p i of producer @p p: a few hundred distinct bins. */
Hint
hintFor(unsigned p, unsigned i)
{
    return static_cast<Hint>(((p * 7919u + i) % 400u) << 16);
}

TEST(Stream, ConcurrentForkStressMatchesBatch)
{
    constexpr unsigned kProducers = 4;
    constexpr unsigned kPerProducer = 5000;
    constexpr unsigned kTotal = kProducers * kPerProducer;

    SchedulerConfig c = cfg();
    c.streamSealThreshold = 64;
    LocalityScheduler s(c);
    Flags flags(kTotal);

    s.streamBegin(2);
    {
        std::vector<std::thread> producers;
        for (unsigned p = 0; p < kProducers; ++p) {
            producers.emplace_back([&, p] {
                for (unsigned i = 0; i < kPerProducer; ++i) {
                    const std::uintptr_t index = p * kPerProducer + i;
                    s.fork(&Flags::mark, &flags,
                           reinterpret_cast<void *>(index),
                           hintFor(p, i), 0);
                }
            });
        }
        for (std::thread &t : producers)
            t.join();
    }
    EXPECT_EQ(s.streamEnd(), kTotal);

    // Exactly once: every thread ran, none ran twice.
    for (unsigned i = 0; i < kTotal; ++i)
        ASSERT_EQ(flags.ran[i].load(), 1u) << "thread " << i;

    // Bin membership is identical to what the batch path would have
    // produced: coordsFor() is the same placement both paths use.
    std::map<std::vector<std::uint64_t>, std::uint64_t> expected;
    for (unsigned p = 0; p < kProducers; ++p) {
        for (unsigned i = 0; i < kPerProducer; ++i) {
            const Hint hints[] = {hintFor(p, i), 0};
            const BlockCoords coords = s.coordsFor(hints);
            ++expected[{coords.begin(), coords.end()}];
        }
    }
    std::map<std::vector<std::uint64_t>, std::uint64_t> actual;
    for (const StreamBinReport &bin : s.lastStreamBins())
        actual[{bin.coords.begin(), bin.coords.end()}] += bin.threads;
    EXPECT_EQ(actual, expected);

    const StreamStats st = s.streamStats();
    EXPECT_EQ(st.forked, kTotal);
    EXPECT_EQ(st.executed, kTotal);
    EXPECT_EQ(st.backlog, 0u);
    EXPECT_GE(st.seals, 1u);
}

TEST(Stream, BackpressureBoundHolds)
{
    constexpr std::uint64_t kBound = 64;
    constexpr unsigned kProducers = 2;
    constexpr unsigned kPerProducer = 4000;

    SchedulerConfig c = cfg();
    c.streamMaxPending = kBound;
    c.streamSealThreshold = 16;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    const std::uint64_t executed = s.runStream(
        1, kProducers, [&](unsigned p) {
            for (unsigned i = 0; i < kPerProducer; ++i) {
                s.fork(
                    [](void *counter, void *) {
                        static_cast<std::atomic<std::uint64_t> *>(
                            counter)
                            ->fetch_add(1, std::memory_order_relaxed);
                    },
                    &ran, nullptr, hintFor(p, i), 0);
            }
        });

    EXPECT_EQ(executed, kProducers * kPerProducer);
    EXPECT_EQ(ran.load(), kProducers * kPerProducer);
    // No fork nests here, so the bound is exact, not just a target.
    EXPECT_LE(s.streamStats().peakBacklog, kBound);
}

TEST(Stream, SealThresholdProducesEpochs)
{
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 10;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    s.streamBegin(1);
    for (unsigned i = 0; i < 100; ++i) {
        s.fork(
            [](void *counter, void *) {
                static_cast<std::atomic<std::uint64_t> *>(counter)
                    ->fetch_add(1, std::memory_order_relaxed);
            },
            &ran, nullptr, static_cast<Hint>(1) << 16, 0);
    }
    EXPECT_EQ(s.streamEnd(), 100u);
    EXPECT_EQ(ran.load(), 100u);

    // All 100 threads share one bin; the threshold sealed it in
    // epochs of 10 and every epoch landed back in the same report.
    ASSERT_EQ(s.lastStreamBins().size(), 1u);
    EXPECT_EQ(s.lastStreamBins()[0].threads, 100u);
    EXPECT_GE(s.lastStreamBins()[0].epochs, 10u);
    EXPECT_GE(s.streamStats().seals, 10u);
}

TEST(Stream, SerialBackendDrainsInline)
{
    SchedulerConfig c = cfg();
    c.backend = BackendKind::Serial;
    c.persistentPool = false;
    c.streamSealThreshold = 8;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    s.streamBegin();
    for (unsigned i = 0; i < 500; ++i) {
        s.fork(
            [](void *counter, void *) {
                static_cast<std::atomic<std::uint64_t> *>(counter)
                    ->fetch_add(1, std::memory_order_relaxed);
            },
            &ran, nullptr, hintFor(0, i), 0);
    }
    EXPECT_EQ(s.streamEnd(), 500u);
    EXPECT_EQ(ran.load(), 500u);
    // No helpers existed; everything drained on this thread.
    EXPECT_EQ(s.stats().pool.threadsSpawned, 0u);
}

TEST(Stream, StreamThenBatchReusesTheScheduler)
{
    SchedulerConfig c = cfg();
    c.streamSealThreshold = 16;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};
    const auto bump = [](void *counter, void *) {
        static_cast<std::atomic<std::uint64_t> *>(counter)->fetch_add(
            1, std::memory_order_relaxed);
    };

    EXPECT_EQ(s.runStream(2, 2, [&](unsigned p) {
        for (unsigned i = 0; i < 300; ++i)
            s.fork(bump, &ran, nullptr, hintFor(p, i), 0);
    }), 600u);

    // The batch path still works on the same scheduler afterwards,
    // and vice versa: ids, pools, and stats all survive the switch.
    for (unsigned i = 0; i < 200; ++i)
        s.fork(bump, &ran, nullptr, hintFor(0, i), 0);
    EXPECT_EQ(s.runParallel(2), 200u);
    EXPECT_EQ(ran.load(), 800u);
    EXPECT_EQ(s.stats().executedThreads, 800u);

    EXPECT_EQ(s.runStream(2, 1, [&](unsigned) {
        for (unsigned i = 0; i < 100; ++i)
            s.fork(bump, &ran, nullptr, hintFor(1, i), 0);
    }), 100u);
    EXPECT_EQ(ran.load(), 900u);
}

TEST(Stream, ContinueAndCollectRecordsStreamFaults)
{
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::ContinueAndCollect;
    c.streamSealThreshold = 8;
    LocalityScheduler s(c);
    std::atomic<std::uint64_t> ran{0};

    const std::uint64_t executed = s.runStream(1, 1, [&](unsigned) {
        for (unsigned i = 0; i < 200; ++i) {
            if (i % 50 == 3) {
                s.fork([](void *, void *) {
                    throw std::runtime_error("stream fault");
                }, nullptr, nullptr, hintFor(0, i), 0);
            } else {
                s.fork(
                    [](void *counter, void *) {
                        static_cast<std::atomic<std::uint64_t> *>(
                            counter)
                            ->fetch_add(1, std::memory_order_relaxed);
                    },
                    &ran, nullptr, hintFor(0, i), 0);
            }
        }
    });

    // Faulted threads are contained and reported, and — exactly as in
    // a batch run — not counted as executed.
    EXPECT_EQ(executed, 196u);
    EXPECT_EQ(ran.load(), 196u);
    EXPECT_EQ(s.streamStats().forked, 200u);
    EXPECT_EQ(s.lastFaultCount(), 4u);
    ASSERT_FALSE(s.lastFaults().empty());
    EXPECT_EQ(s.lastFaults()[0].message, "stream fault");
    EXPECT_EQ(s.stats().faultedThreads, 4u);
}

TEST(Stream, StopTourRethrowsTheFirstStreamFault)
{
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::StopTour;
    c.streamSealThreshold = 4;
    LocalityScheduler s(c);

    s.streamBegin(1);
    for (unsigned i = 0; i < 50; ++i) {
        s.fork([](void *, void *) {
            throw std::runtime_error("first loss");
        }, nullptr, nullptr, hintFor(0, i), 0);
    }
    EXPECT_THROW(s.streamEnd(), std::runtime_error);

    // The session is closed and the scheduler reusable.
    EXPECT_FALSE(s.streaming());
    std::atomic<std::uint64_t> ran{0};
    s.fork(
        [](void *counter, void *) {
            static_cast<std::atomic<std::uint64_t> *>(counter)
                ->fetch_add(1, std::memory_order_relaxed);
        },
        &ran, nullptr, 0, 0);
    EXPECT_EQ(s.run(), 1u);
    EXPECT_EQ(ran.load(), 1u);
}

TEST(Stream, LifecycleMisuseIsReported)
{
    LocalityScheduler s(cfg());
    EXPECT_THROW(s.streamEnd(), lsched::UsageError);

    s.fork([](void *, void *) {}, nullptr, nullptr, 0, 0);
    EXPECT_THROW(s.streamBegin(1), lsched::UsageError);
    s.clear();

    s.streamBegin(1);
    EXPECT_TRUE(s.streaming());
    EXPECT_THROW(s.streamBegin(1), lsched::UsageError);
    EXPECT_THROW(s.run(), lsched::UsageError);
    EXPECT_EQ(s.streamEnd(), 0u);
    EXPECT_FALSE(s.streaming());
}

} // namespace
