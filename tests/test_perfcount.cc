/** @file Unit tests for the hardware-performance-counter substrate.
 *  Counter availability depends on the host (perf_event_paranoid,
 *  containers, PMU virtualization), so behavioural tests skip
 *  gracefully when counters cannot be opened — the graceful
 *  degradation itself is part of the contract under test. */

#include <gtest/gtest.h>

#include "perfcount/perf_counters.hh"

namespace
{

using namespace lsched::perfcount;

TEST(PerfCounters, EventNamesAreStable)
{
    EXPECT_STREQ(hwEventName(HwEvent::Instructions), "instructions");
    EXPECT_STREQ(hwEventName(HwEvent::CpuCycles), "cpu-cycles");
    EXPECT_STREQ(hwEventName(HwEvent::CacheReferences),
                 "cache-references");
    EXPECT_STREQ(hwEventName(HwEvent::CacheMisses), "cache-misses");
    EXPECT_STREQ(hwEventName(HwEvent::L1dReadMisses),
                 "L1d-read-misses");
}

TEST(PerfCounters, UnusableGroupIsHarmless)
{
    PerfCounterGroup group({HwEvent::Instructions});
    if (group.usable())
        GTEST_SKIP() << "counters available; nothing to degrade";
    EXPECT_FALSE(group.error().empty());
    group.start(); // must not crash
    const PerfSample sample = group.stop();
    EXPECT_FALSE(sample.valid);
    ASSERT_EQ(sample.values.size(), 1u);
    EXPECT_EQ(sample.values[0], 0u);
}

TEST(PerfCounters, ProbeAgreesWithGroupUsability)
{
    PerfCounterGroup group({HwEvent::Instructions});
    EXPECT_EQ(countersAvailable(), group.usable());
}

TEST(PerfCounters, CountsInstructionsWhenAvailable)
{
    if (!countersAvailable())
        GTEST_SKIP() << "perf counters unavailable on this host";
    PerfCounterGroup group({HwEvent::Instructions});
    ASSERT_TRUE(group.usable());
    group.start();
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + static_cast<std::uint64_t>(i);
    const PerfSample sample = group.stop();
    ASSERT_TRUE(sample.valid);
    // The loop is >= 100k iterations of >= 1 instruction.
    EXPECT_GT(sample.values[0], 100000u);
}

TEST(PerfCounters, LargerWorkCountsMoreInstructions)
{
    if (!countersAvailable())
        GTEST_SKIP() << "perf counters unavailable on this host";
    auto measure = [](int iters) {
        PerfCounterGroup group({HwEvent::Instructions});
        group.start();
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < iters; ++i)
            sink = sink + static_cast<std::uint64_t>(i);
        return group.stop().values[0];
    };
    const auto small = measure(10000);
    const auto big = measure(200000);
    EXPECT_GT(big, small * 5);
}

TEST(PerfCounters, MultiEventGroupReadsAllValues)
{
    if (!countersAvailable())
        GTEST_SKIP() << "perf counters unavailable on this host";
    PerfCounterGroup group(
        {HwEvent::Instructions, HwEvent::CpuCycles});
    if (!group.usable())
        GTEST_SKIP() << "multi-event group refused: " << group.error();
    group.start();
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50000; ++i)
        sink = sink + static_cast<std::uint64_t>(i);
    const PerfSample sample = group.stop();
    ASSERT_TRUE(sample.valid);
    ASSERT_EQ(sample.values.size(), 2u);
    EXPECT_GT(sample.values[0], 0u);
    EXPECT_GT(sample.values[1], 0u);
}

} // namespace
