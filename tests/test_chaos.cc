/**
 * @file
 * Randomized chaos harness for the recovery layer (scripts/chaos.sh).
 *
 * One seeded schedule of injected faults, wedged-worker stalls,
 * deadlines, watchdogs, governors, and producer bursts is driven
 * through batch, parallel, and streaming tours on a single reused
 * scheduler. The seed comes from LSCHED_CHAOS_SEED (default 1), so a
 * failing schedule replays exactly: CI runs scripts/chaos.sh over many
 * seeds and prints the seed of any failure.
 *
 * The harness asserts the invariants every schedule must keep:
 *
 *  - exactly-once: no user thread ever runs twice; a round that ends
 *    without an error ran or accounted every forked thread;
 *  - no hangs: every tour and stream terminates (a wedged schedule
 *    surfaces as DeadlineError/AdmissionTimeout — scripts/chaos.sh
 *    enforces the outer wall-clock bound);
 *  - clean recovery: after every round — faulted, cancelled, or
 *    degraded — the scheduler has zero pending threads and the next
 *    round works;
 *  - monotone recovery counters: sched.recover.* never step backward.
 *
 * The whole binary must stay clean under LSCHED_SANITIZE=thread
 * (ctest -L chaos under the tsan preset).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hh"
#include "support/failpoint.hh"
#include "support/prng.hh"
#include "threads/scheduler.hh"

namespace
{

namespace fp = lsched::failpoint;
using namespace lsched::threads;

/** Seed of this run's schedule (LSCHED_CHAOS_SEED, default 1). */
std::uint64_t
chaosSeed()
{
    if (const char *env = std::getenv("LSCHED_CHAOS_SEED")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v != 0)
            return static_cast<std::uint64_t>(v);
    }
    return 1;
}

/** Per-fork run counters: the exactly-once ledger. */
struct Ledger
{
    std::vector<std::atomic<std::uint32_t>> ran;

    explicit Ledger(std::size_t n) : ran(n)
    {
        for (auto &r : ran)
            r.store(0, std::memory_order_relaxed);
    }

    static void
    mark(void *self, void *index)
    {
        static_cast<Ledger *>(self)
            ->ran[reinterpret_cast<std::uintptr_t>(index)]
            .fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &r : ran)
            sum += r.load(std::memory_order_relaxed);
        return sum;
    }
};

/** One randomized fail-point spec; empty = no injection this round. */
std::string
randomSpec(lsched::Prng &rng, bool allowThrowing)
{
    switch (rng.nextBelow(allowThrowing ? 5 : 2)) {
      case 0:
        return "";
      case 1:
        // A wedged worker: 20-80 ms mid-bin stall, never a throw.
        return "stall=" + std::to_string(20 + rng.nextBelow(61));
      case 2:
        return "hit=" + std::to_string(1 + rng.nextBelow(8));
      case 3:
        return "every=" + std::to_string(2 + rng.nextBelow(6));
      default:
        return "prob=0.2@" + std::to_string(1 + rng.nextBelow(1000));
    }
}

/** Counters that must never step backward across rounds. */
void
expectMonotone(const RecoverySnapshot &before,
               const RecoverySnapshot &after, int round)
{
    EXPECT_GE(after.deadlines, before.deadlines) << "round " << round;
    EXPECT_GE(after.watchdogCancels, before.watchdogCancels)
        << "round " << round;
    EXPECT_GE(after.cancelledBins, before.cancelledBins)
        << "round " << round;
    EXPECT_GE(after.cancelledThreads, before.cancelledThreads)
        << "round " << round;
    EXPECT_GE(after.admissionRetries, before.admissionRetries)
        << "round " << round;
    EXPECT_GE(after.admissionTimeouts, before.admissionTimeouts)
        << "round " << round;
    EXPECT_GE(after.loadSheds, before.loadSheds) << "round " << round;
    EXPECT_GE(after.degradedTours, before.degradedTours)
        << "round " << round;
    EXPECT_GE(after.recoveries, before.recoveries)
        << "round " << round;
}

TEST(Chaos, SeededFaultScheduleKeepsTheInvariants)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    const std::uint64_t seed = chaosSeed();
    SCOPED_TRACE("LSCHED_CHAOS_SEED=" + std::to_string(seed));
    lsched::Prng rng(seed);

    SchedulerConfig base;
    base.dims = 2;
    base.blockBytes = 1 << 14;
    base.groupCapacity = 8;
    LocalityScheduler s(base);
    RecoverySnapshot last = s.recoverySnapshot();

    constexpr int kRounds = 10;
    for (int round = 0; round < kRounds; ++round) {
        const bool streaming = rng.nextBelow(2) == 1;
        SchedulerConfig c = base;
        c.backend = static_cast<BackendKind>(rng.nextBelow(3));
        // Streams never run injected throws under Abort: an Abort
        // fault on a drain helper is fatal by contract (the policy
        // exists for the caller's thread). Batch rounds use all three.
        c.onError = streaming
                        ? (rng.nextBelow(2)
                               ? ErrorPolicy::ContinueAndCollect
                               : ErrorPolicy::StopTour)
                        : static_cast<ErrorPolicy>(rng.nextBelow(3));
        c.deadlineMillis = rng.nextBelow(2) ? 0 : 40 + rng.nextBelow(61);
        c.watchdogMillis = rng.nextBelow(3) ? 0 : 40 + rng.nextBelow(61);
        c.watchdogAction = rng.nextBelow(2) ? WatchdogAction::Cancel
                                            : WatchdogAction::Event;
        c.streamSealThreshold = 1 + rng.nextBelow(16);
        c.streamMaxPending = rng.nextBelow(2) ? 0 : 16 + rng.nextBelow(64);
        c.streamAdmitRetries = rng.nextBelow(2) ? 0 : 3 + rng.nextBelow(6);
        if (rng.nextBelow(2)) {
            c.overloadEpochs = 1 + rng.nextBelow(3);
            c.recoverEpochs = 1 + rng.nextBelow(3);
        }
        if (rng.nextBelow(2)) {
            // Adaptive placement rounds: the tuner retunes at tour and
            // stream-epoch boundaries while faults fire; exactly-once
            // and conservation must survive every parameter swap.
            c.placement = PlacementKind::Adaptive;
            c.adaptBase = rng.nextBelow(2)
                              ? PlacementKind::BlockHash
                              : PlacementKind::Hierarchical;
            c.adaptEpochs = 1 + rng.nextBelow(2);
            c.adaptHold = rng.nextBelow(3);
        }
        if (rng.nextBelow(2)) {
            // Topology-forced rounds: a random synthetic cache tree
            // drives domain-partitioned tours (and cluster-aware
            // pinning, which mostly fails on small CI hosts — the
            // graceful-fallback path) while the same faults fire.
            c.topology =
                "1x" + std::to_string(1 + rng.nextBelow(2)) + "x" +
                std::to_string(1 + rng.nextBelow(3)) + "x" +
                std::to_string(1 + rng.nextBelow(2)) +
                "/l2=" + std::to_string(1u << (14 + rng.nextBelow(3)));
            c.pinWorkers = rng.nextBelow(2) == 1;
        } else {
            c.topology = "flat";
        }
        s.configure(c);

        const std::string spec = randomSpec(
            rng, /*allowThrowing=*/c.onError != ErrorPolicy::Abort);
        // Throwing specs fault at the TOP of a bin (before any user
        // thread), so each fire is one recorded fault that consumed no
        // fork — the conservation check below adds the fire count.
        const bool throwingSpec =
            !spec.empty() && spec.rfind("stall=", 0) != 0;
        fp::disarmAll();
        if (!spec.empty()) {
            ASSERT_TRUE(fp::arm("sched.bin.execute", spec)) << spec;
        }
        SCOPED_TRACE("round " + std::to_string(round) + ": " +
                     std::string(streaming ? "stream" : "batch") +
                     " backend=" + backendName(c.backend) +
                     " spec=" + (spec.empty() ? "none" : spec) +
                     " deadline=" + std::to_string(c.deadlineMillis) +
                     " topo=" + c.topology);

        const std::uint64_t forks = 40 + rng.nextBelow(161);
        Ledger ledger(forks);
        const std::uint64_t hintSalt = rng.next();
        const auto hintOfIdx = [hintSalt](std::uint64_t i) {
            return static_cast<Hint>(((i * 2654435761u + hintSalt) %
                                      64) <<
                                     15);
        };

        bool failed = false;
        std::uint64_t executed = 0;
        if (streaming) {
            const unsigned producers = 1 + rng.nextBelow(3);
            const unsigned helpers = 1 + rng.nextBelow(2);
            const std::uint64_t burst = 1 + rng.nextBelow(32);
            try {
                executed = s.runStream(
                    helpers, producers, [&](unsigned p) {
                        // Bursty producers: fork a burst, breathe,
                        // repeat until this producer's share is in.
                        for (std::uint64_t i = p; i < forks;
                             i += producers) {
                            s.fork(&Ledger::mark, &ledger,
                                   reinterpret_cast<void *>(i),
                                   hintOfIdx(i), 0);
                            if ((i / producers) % burst == burst - 1) {
                                std::this_thread::yield();
                            }
                        }
                    });
            } catch (const std::exception &) {
                // DeadlineError, AdmissionTimeout, a StopTour rethrow,
                // or an injected fault — all recoverable by contract.
                failed = true;
            }
        } else {
            for (std::uint64_t i = 0; i < forks; ++i) {
                s.fork(&Ledger::mark, &ledger,
                       reinterpret_cast<void *>(i), hintOfIdx(i), 0);
            }
            const unsigned workers = 1 + rng.nextBelow(4);
            try {
                executed = s.runParallel(workers);
            } catch (const std::exception &) {
                failed = true;
            }
        }
        // Read fires before disarming: disarm erases the site and its
        // counters (arm() started this round's site at zero).
        const std::uint64_t synthetic =
            throwingSpec ? fp::fireCount("sched.bin.execute") : 0;
        fp::disarmAll();

        // Exactly-once: nothing ever runs twice, and a round that
        // returned normally ran or accounted every single fork.
        for (std::uint64_t i = 0; i < forks; ++i) {
            ASSERT_LE(ledger.ran[i].load(), 1u)
                << "thread " << i << " ran twice";
        }
        if (!failed) {
            EXPECT_EQ(ledger.total(), executed);
            EXPECT_EQ(executed + s.lastFaultCount(),
                      forks + synthetic);
        } else {
            EXPECT_LE(ledger.total(), forks);
        }

        // Clean recovery: whatever happened, the scheduler is idle and
        // the next round starts from a working state.
        EXPECT_EQ(s.pendingThreads(), 0u);
        EXPECT_FALSE(s.streaming());

        const RecoverySnapshot now = s.recoverySnapshot();
        expectMonotone(last, now, round);
        last = now;
    }

    // The schedule as a whole must terminate with a live scheduler: a
    // final clean run proves no round leaked a wedge.
    SchedulerConfig clean = base;
    s.configure(clean);
    Ledger ledger(64);
    for (std::uint64_t i = 0; i < 64; ++i) {
        s.fork(&Ledger::mark, &ledger, reinterpret_cast<void *>(i),
               static_cast<Hint>(i % 8) << 15, 0);
    }
    EXPECT_EQ(s.runParallel(2), 64u);
    EXPECT_EQ(ledger.total(), 64u);
}

TEST(Chaos, EightProducerAdmissionStressConservesThreads)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    // Lock-free admission under fire: eight producers force the
    // per-shard tables through concurrent growth cycles (minimum
    // starting slots, thousands of distinct bins) while a periodic
    // injected fault throws at bin tops and a tight ticket bound
    // keeps producers cycling through the backoff slow path. The
    // conservation ledger must balance exactly even so.
    const std::uint64_t seed = chaosSeed();
    SCOPED_TRACE("LSCHED_CHAOS_SEED=" + std::to_string(seed));
    lsched::Prng rng(seed);

    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 14;
    c.groupCapacity = 4;
    c.hashBuckets = 16;
    c.streamShards = 2;
    c.streamMaxPending = 32;
    c.streamSealThreshold = 4;
    c.onError = ErrorPolicy::ContinueAndCollect;
    LocalityScheduler s(c);

    constexpr unsigned kProducers = 8;
    constexpr std::uint64_t kForks = 8 * 1500;
    Ledger ledger(kForks);
    const std::uint64_t hintSalt = rng.next();

    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute",
                        "every=" + std::to_string(5 + rng.nextBelow(8))));
    std::uint64_t executed = 0;
    EXPECT_NO_THROW(executed = s.runStream(
                        2, kProducers, [&](unsigned p) {
                            for (std::uint64_t i = p; i < kForks;
                                 i += kProducers) {
                                const Hint h = static_cast<Hint>(
                                    ((i * 2654435761u + hintSalt) %
                                     2048) << 14);
                                s.fork(&Ledger::mark, &ledger,
                                       reinterpret_cast<void *>(i), h,
                                       0);
                            }
                        }));
    const std::uint64_t synthetic = fp::fireCount("sched.bin.execute");
    fp::disarmAll();

    // Exactly-once and conservation: every fork ran once or is a
    // recorded fault; injected fires add faults but consume no fork.
    for (std::uint64_t i = 0; i < kForks; ++i) {
        ASSERT_LE(ledger.ran[i].load(), 1u)
            << "thread " << i << " ran twice";
    }
    EXPECT_EQ(ledger.total(), executed);
    EXPECT_EQ(executed + s.lastFaultCount(), kForks + synthetic);
    EXPECT_EQ(s.pendingThreads(), 0u);
    EXPECT_FALSE(s.streaming());
}

} // namespace
