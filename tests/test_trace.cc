/** @file Unit tests for trace sinks and the .ltrc file format. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hh"
#include "support/prng.hh"
#include "trace/record.hh"
#include "trace/recorder.hh"
#include "trace/trace_file.hh"

namespace
{

using namespace lsched::trace;

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "lsched_" + tag + ".ltrc";
}

TEST(VectorSink, CapturesRecordsInOrder)
{
    VectorSink sink;
    sink.load(100, 8);
    sink.store(200, 4);
    sink.ifetch(300, 4);
    ASSERT_EQ(sink.records().size(), 3u);
    EXPECT_EQ(sink.records()[0],
              (TraceRecord{RefType::Load, 8, 100}));
    EXPECT_EQ(sink.records()[1],
              (TraceRecord{RefType::Store, 4, 200}));
    EXPECT_EQ(sink.records()[2],
              (TraceRecord{RefType::IFetch, 4, 300}));
}

TEST(CountingSink, CountsByType)
{
    CountingSink sink;
    sink.load(0, 8);
    sink.load(8, 8);
    sink.store(16, 8);
    sink.ifetch(0, 4);
    EXPECT_EQ(sink.loads(), 2u);
    EXPECT_EQ(sink.stores(), 1u);
    EXPECT_EQ(sink.ifetches(), 1u);
    EXPECT_EQ(sink.dataRefs(), 3u);
}

TEST(HierarchySink, ForwardsToHierarchy)
{
    lsched::cachesim::HierarchyConfig cfg;
    cfg.l1i = {"L1I", 1024, 32, 1};
    cfg.l1d = {"L1D", 1024, 32, 1};
    cfg.l2 = {"L2", 8192, 128, 4};
    lsched::cachesim::Hierarchy h(cfg);
    HierarchySink sink(h);
    sink.load(0, 8);
    sink.store(8, 8);
    sink.ifetch(0x1000, 4);
    EXPECT_EQ(h.dataRefs(), 2u);
    EXPECT_EQ(h.ifetches(), 1u);
}

TEST(TraceFile, RoundTripSmall)
{
    const std::string path = tempTracePath("roundtrip");
    {
        TraceWriter w(path);
        w.load(0x1000, 8);
        w.store(0x1008, 8);
        w.ifetch(0x400000, 4);
        w.load(0x0, 8); // negative delta
    }
    TraceReader r(path);
    EXPECT_EQ(r.count(), 4u);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{RefType::Load, 8, 0x1000}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{RefType::Store, 8, 0x1008}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{RefType::IFetch, 4, 0x400000}));
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec, (TraceRecord{RefType::Load, 8, 0x0}));
    EXPECT_FALSE(r.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFile, RoundTripRandomStream)
{
    const std::string path = tempTracePath("random");
    std::vector<TraceRecord> expected;
    lsched::Prng prng(31337);
    {
        TraceWriter w(path);
        for (int i = 0; i < 10000; ++i) {
            const auto type = static_cast<RefType>(prng.nextBelow(3));
            const auto size =
                static_cast<std::uint8_t>(1 + prng.nextBelow(32));
            const std::uint64_t addr = prng.next() >> 12;
            w.ref(type, addr, size);
            expected.push_back({type, size, addr});
        }
        EXPECT_EQ(w.count(), 10000u);
    }
    TraceReader r(path);
    TraceRecord rec;
    for (const auto &e : expected) {
        ASSERT_TRUE(r.next(rec));
        ASSERT_EQ(rec, e);
    }
    EXPECT_FALSE(r.next(rec));
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayDrivesSink)
{
    const std::string path = tempTracePath("replay");
    {
        TraceWriter w(path);
        for (int i = 0; i < 100; ++i)
            w.load(static_cast<std::uint64_t>(i) * 8, 8);
        for (int i = 0; i < 50; ++i)
            w.store(static_cast<std::uint64_t>(i) * 8, 8);
    }
    TraceReader r(path);
    CountingSink sink;
    EXPECT_EQ(r.replay(sink), 150u);
    EXPECT_EQ(sink.loads(), 100u);
    EXPECT_EQ(sink.stores(), 50u);
    std::remove(path.c_str());
}

TEST(TraceFile, StridedStreamCompressesWell)
{
    const std::string path = tempTracePath("compression");
    const int n = 100000;
    {
        TraceWriter w(path);
        for (int i = 0; i < n; ++i)
            w.load(0x10000000 + static_cast<std::uint64_t>(i) * 8, 8);
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fclose(f);
    // Fixed-stride deltas need ~2 bytes per record.
    EXPECT_LT(bytes, n * 3);
    std::remove(path.c_str());
}

TEST(TraceFile, CloseIsIdempotent)
{
    const std::string path = tempTracePath("close");
    TraceWriter w(path);
    w.load(0x100, 8);
    w.close();
    w.close(); // second close must be harmless
    TraceReader r(path);
    EXPECT_EQ(r.count(), 1u);
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, TruncatedBodyIsFatal)
{
    const std::string path = tempTracePath("truncbody");
    {
        TraceWriter w(path);
        for (int i = 0; i < 100; ++i)
            w.load(0x123456789abcull + static_cast<std::uint64_t>(i) *
                                           0x10000,
                   8);
    }
    // Chop the file mid-record.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 3), 0);

    TraceReader r(path);
    TraceRecord rec;
    EXPECT_EXIT(
        {
            while (r.next(rec)) {
            }
        },
        ::testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, BadMagicIsFatal)
{
    const std::string path = tempTracePath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOPE____________", 1, 16, f);
    std::fclose(f);
    EXPECT_EXIT(TraceReader r(path), ::testing::ExitedWithCode(1),
                "bad magic");
    std::remove(path.c_str());
}

} // namespace
