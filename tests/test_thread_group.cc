/** @file Unit tests for thread groups and the group pool. */

#include <gtest/gtest.h>

#include "threads/thread_group.hh"

namespace
{

using namespace lsched::threads;

void
noop(void *, void *)
{
}

TEST(GroupPool, AllocatesEmptyGroups)
{
    GroupPool pool(8);
    ThreadGroup *g = pool.allocate();
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->count, 0u);
    EXPECT_EQ(g->capacity, 8u);
    EXPECT_EQ(g->next, nullptr);
    EXPECT_FALSE(g->full());
}

TEST(GroupPool, PushFillsGroup)
{
    GroupPool pool(2);
    ThreadGroup *g = pool.allocate();
    g->push(&noop, reinterpret_cast<void *>(1),
            reinterpret_cast<void *>(2));
    EXPECT_EQ(g->count, 1u);
    EXPECT_FALSE(g->full());
    g->push(&noop, nullptr, nullptr);
    EXPECT_TRUE(g->full());
    EXPECT_EQ(g->specs[0].arg1, reinterpret_cast<void *>(1));
    EXPECT_EQ(g->specs[0].arg2, reinterpret_cast<void *>(2));
}

TEST(GroupPool, RecycleChainReusesMemory)
{
    GroupPool pool(4);
    ThreadGroup *a = pool.allocate();
    ThreadGroup *b = pool.allocate();
    a->next = b;
    a->push(&noop, nullptr, nullptr);
    b->push(&noop, nullptr, nullptr);
    pool.recycleChain(a);
    EXPECT_EQ(pool.allocatedGroups(), 2u);

    // Recycled groups come back reset, no new allocation.
    ThreadGroup *c = pool.allocate();
    ThreadGroup *d = pool.allocate();
    EXPECT_EQ(c->count, 0u);
    EXPECT_EQ(d->count, 0u);
    EXPECT_EQ(pool.allocatedGroups(), 2u);
    // Set semantics: the two recycled groups are a and b in some order.
    EXPECT_TRUE((c == a && d == b) || (c == b && d == a));
}

TEST(GroupPool, RecycleNullChainIsSafe)
{
    GroupPool pool(4);
    pool.recycleChain(nullptr);
    EXPECT_EQ(pool.allocatedGroups(), 0u);
}

TEST(GroupPool, SteadyStateForkingAllocatesNothingNew)
{
    GroupPool pool(16);
    // Simulate three run cycles of 10 groups each.
    for (int cycle = 0; cycle < 3; ++cycle) {
        ThreadGroup *head = nullptr;
        for (int i = 0; i < 10; ++i) {
            ThreadGroup *g = pool.allocate();
            g->next = head;
            head = g;
        }
        pool.recycleChain(head);
    }
    EXPECT_EQ(pool.allocatedGroups(), 10u);
}

TEST(GroupPoolDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(GroupPool(0), "capacity");
}

} // namespace
