/**
 * @file
 * Tests for the placement layer (threads/placement.hh): name
 * round-trips, each policy's binning behavior, super-bin grouping of a
 * tour, and the fixed-arity fork()'s explicit hint-span widening /
 * truncation (the dims != 3 contract).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <set>
#include <vector>

#include "support/error.hh"
#include "threads/execution.hh"
#include "threads/placement.hh"
#include "threads/scheduler.hh"
#include "threads/tour.hh"

namespace
{

using namespace lsched::threads;

TEST(PlacementNames, RoundTripAndRejectUnknown)
{
    for (const PlacementKind kind :
         {PlacementKind::BlockHash, PlacementKind::RoundRobin,
          PlacementKind::Hierarchical}) {
        PlacementKind parsed = PlacementKind::BlockHash;
        EXPECT_TRUE(tryPlacementFromName(placementName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    PlacementKind out = PlacementKind::Hierarchical;
    EXPECT_FALSE(tryPlacementFromName("fifo", &out));
    EXPECT_EQ(out, PlacementKind::Hierarchical) << "out must be untouched";
}

TEST(BackendNames, RoundTripAndRejectUnknown)
{
    for (const BackendKind kind :
         {BackendKind::Serial, BackendKind::Pooled,
          BackendKind::ColdSpawn}) {
        BackendKind parsed = BackendKind::Serial;
        EXPECT_TRUE(tryBackendFromName(backendName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
    }
    BackendKind out = BackendKind::ColdSpawn;
    EXPECT_FALSE(tryBackendFromName("openmp", &out));
    EXPECT_EQ(out, BackendKind::ColdSpawn);
}

TEST(BlockHashPlacement, SameBlockSameBinAndSymmetricFold)
{
    BlockHashPlacement plain(2, 1 << 12, /*symmetric=*/false);
    const Hint a = 0x1000, b = 0x2800, far = 0x9000;
    const Hint ab[] = {a, b};
    const Hint ba[] = {b, a};
    const Hint af[] = {a, far};
    EXPECT_EQ(plain.place(ab).coords, plain.place(ab).coords);
    EXPECT_NE(plain.place(ab).coords, plain.place(af).coords);
    EXPECT_EQ(plain.place(ab).superBin, kNoSuperBin);

    BlockHashPlacement folded(2, 1 << 12, /*symmetric=*/true);
    EXPECT_EQ(folded.place(ab).coords, folded.place(ba).coords);
    EXPECT_NE(plain.place(ab).coords, plain.place(ba).coords)
        << "unfolded placement must keep the orders distinct";
}

TEST(RoundRobinPlacement, IgnoresHintsAndCyclesOverBins)
{
    RoundRobinPlacement rr(4);
    const Hint same[] = {0x1000, 0x1000};
    std::vector<std::uint64_t> firstCycle;
    for (int i = 0; i < 8; ++i) {
        const PlacementDecision d = rr.place(same);
        EXPECT_EQ(d.superBin, kNoSuperBin);
        if (i < 4)
            firstCycle.push_back(d.coords[0]);
        else
            EXPECT_EQ(d.coords[0], firstCycle[i - 4]) << "period 4";
    }
    // Identical hints still spread over all four bins.
    EXPECT_EQ(std::set<std::uint64_t>(firstCycle.begin(),
                                      firstCycle.end())
                  .size(),
              4u);
}

TEST(RoundRobinPlacement, PeekDoesNotAdvanceTheCursor)
{
    RoundRobinPlacement rr(4);
    const Hint same[] = {0x1000, 0x1000};
    // Any number of peeks answer with the NEXT bin without consuming
    // it: the following place() must land exactly there.
    for (int round = 0; round < 3; ++round) {
        const std::uint64_t upcoming = rr.peek(same).coords[0];
        EXPECT_EQ(rr.peek(same).coords[0], upcoming);
        EXPECT_EQ(rr.place(same).coords[0], upcoming) << round;
    }
    EXPECT_FALSE(rr.stateless());
}

TEST(SchedulerPlacement, CoordsForDoesNotAdvanceRoundRobin)
{
    // The regression this API exists for: coordsFor() used to call
    // place(), so every inspection silently burned a round-robin slot
    // and the next fork landed one bin further than reported.
    SchedulerConfig c;
    c.placement = PlacementKind::RoundRobin;
    c.roundRobinBins = 4;
    LocalityScheduler s(c);
    const Hint hints[] = {0x1000};

    const BlockCoords predicted = s.coordsFor(hints);
    EXPECT_EQ(s.coordsFor(hints), predicted) << "peek is idempotent";
    s.fork([](void *, void *) {}, nullptr, nullptr, hints[0], 0);
    // The forked thread landed in the bin coordsFor() predicted.
    ASSERT_EQ(s.binCount(), 1u);
    EXPECT_EQ(s.run(), 1u);
}

TEST(SchedulerPlacement, CoordsForCreatesNoHierarchicalState)
{
    SchedulerConfig c;
    c.placement = PlacementKind::Hierarchical;
    c.blockBytes = 1 << 12;
    c.superBinFan = 2;
    LocalityScheduler s(c);
    const Hint hints[] = {0x1000};

    // Peeking must not allocate super-bins as a side effect.
    const auto &h = static_cast<const TopologyPlacement &>(
        s.placementPolicy());
    (void)s.coordsFor(hints);
    EXPECT_EQ(h.superBinCount(), 0u);
    s.fork([](void *, void *) {}, nullptr, nullptr, hints[0], 0);
    EXPECT_EQ(h.superBinCount(), 1u);
    EXPECT_EQ(s.run(), 1u);
}

TEST(TopologyPlacement, GroupsAdjacentBlocksIntoSuperBins)
{
    // 1-dim, 4 KB blocks, fan 2: blocks {0,1} share super-bin 0,
    // blocks {2,3} super-bin 1, ids in creation order.
    TopologyPlacement h(1, 1 << 12, false, /*fan=*/2);
    const auto superOf = [&](Hint hint) {
        const Hint hints[] = {hint};
        return h.place(hints).superBin;
    };
    const std::uint32_t s0 = superOf(0x0000);
    EXPECT_EQ(superOf(0x1000), s0);
    const std::uint32_t s1 = superOf(0x2000);
    EXPECT_NE(s1, s0);
    EXPECT_EQ(superOf(0x3000), s1);
    EXPECT_EQ(h.superBinCount(), 2u);
    EXPECT_TRUE(h.hierarchical());
}

TEST(TopologyPlacement, GroupBySuperBinsKeepsGroupsContiguous)
{
    // An interleaved tour regroups by super-bin, stably within one.
    std::deque<Bin> storage(6);
    std::vector<Bin *> tour;
    const std::uint32_t supers[] = {1, 0, 1, kNoSuperBin, 0, 1};
    for (int i = 0; i < 6; ++i) {
        storage[i].id = static_cast<std::uint32_t>(i);
        storage[i].superBin = supers[i];
        tour.push_back(&storage[i]);
    }
    const std::vector<Bin *> grouped = groupBySuperBins(std::move(tour));
    std::vector<std::uint32_t> ids;
    for (const Bin *b : grouped)
        ids.push_back(b->id);
    // super 0: bins 1,4; super 1: bins 0,2,5; unplaced last: bin 3.
    EXPECT_EQ(ids, (std::vector<std::uint32_t>{1, 4, 0, 2, 5, 3}));
}

TEST(SchedulerPlacement, RoundRobinScramblesWhatBlockHashKeeps)
{
    // 16 forks into 2 address blocks: blockhash makes 2 bins,
    // roundrobin (bins=8) makes 8 regardless of the same hints.
    const auto binsUsed = [](PlacementKind kind) {
        SchedulerConfig c;
        c.dims = 1;
        c.blockBytes = 1 << 12;
        c.placement = kind;
        c.roundRobinBins = 8;
        LocalityScheduler s(c);
        for (int i = 0; i < 16; ++i)
            s.fork([](void *, void *) {}, nullptr, nullptr,
                   static_cast<Hint>(i % 2) << 12);
        const std::uint64_t occupied = s.stats().occupiedBins;
        s.run();
        return occupied;
    };
    EXPECT_EQ(binsUsed(PlacementKind::BlockHash), 2u);
    EXPECT_EQ(binsUsed(PlacementKind::RoundRobin), 8u);
}

TEST(SchedulerPlacement, HierarchicalRunsEveryThreadOnceInParallel)
{
    SchedulerConfig c;
    c.dims = 1;
    c.blockBytes = 1 << 12;
    c.placement = PlacementKind::Hierarchical;
    c.superBinFan = 2;
    LocalityScheduler s(c);
    std::vector<std::atomic<int>> hits(32);
    for (auto &h : hits)
        h.store(0);
    for (std::uintptr_t i = 0; i < 32; ++i)
        s.fork(
            [](void *arg, void *) {
                static_cast<std::atomic<int> *>(arg)->fetch_add(1);
            },
            &hits[i], nullptr, static_cast<Hint>(i % 8) << 12);
    EXPECT_EQ(s.runParallel(4), 32u);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "thread " << i;
    const auto &policy = dynamic_cast<const TopologyPlacement &>(
        s.placementPolicy());
    EXPECT_EQ(policy.superBinCount(), 4u); // 8 blocks / fan 2
}

TEST(FixedArityFork, TruncatesToConfiguredDimsAndRejectsLostHints)
{
    // dims=2: hint3 is outside the scheduling space. Zero passes
    // (nothing is lost); a non-zero hint3 is a caller error, not a
    // silent drop.
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 12;
    LocalityScheduler s(c);
    EXPECT_NO_THROW(
        s.fork([](void *, void *) {}, nullptr, nullptr, 0x1000, 0x2000, 0));
    EXPECT_THROW(s.fork([](void *, void *) {}, nullptr, nullptr, 0x1000,
                        0x2000, 0x3000),
                 lsched::UsageError);
    EXPECT_EQ(s.run(), 1u);
}

TEST(FixedArityFork, ZeroExtendsWhenDimsExceedsThree)
{
    // dims=4: the three fixed hints must land in the same bin as the
    // explicit 4-vector with zeros appended — not in a garbage bin
    // keyed on uninitialized coordinates.
    SchedulerConfig c;
    c.dims = 4;
    c.blockBytes = 1 << 12;
    LocalityScheduler s(c);
    s.fork([](void *, void *) {}, nullptr, nullptr, 0x1000, 0x2000,
           0x3000);
    const Hint full[] = {0x1000, 0x2000, 0x3000, 0};
    s.fork([](void *, void *) {}, nullptr, nullptr, full);
    EXPECT_EQ(s.stats().occupiedBins, 1u)
        << "fixed-arity and explicit-span forks must share the bin";
    EXPECT_EQ(s.run(), 2u);
}

} // namespace
