/** @file Unit tests for support/cli.hh. */

#include <gtest/gtest.h>

#include "support/cli.hh"

namespace
{

using lsched::Cli;

Cli
makeCli()
{
    Cli cli("prog", "test program");
    cli.addInt("n", 64, "problem size");
    cli.addDouble("theta", 0.5, "opening angle");
    cli.addString("machine", "r8000", "machine model");
    cli.addFlag("full", "paper-scale run");
    return cli;
}

TEST(Cli, DefaultsApply)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    EXPECT_EQ(cli.getInt("n"), 64);
    EXPECT_DOUBLE_EQ(cli.getDouble("theta"), 0.5);
    EXPECT_EQ(cli.getString("machine"), "r8000");
    EXPECT_FALSE(cli.getFlag("full"));
}

TEST(Cli, EqualsSyntax)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n=128", "--theta=0.9",
                          "--machine=r10000", "--full"};
    cli.parse(5, argv);
    EXPECT_EQ(cli.getInt("n"), 128);
    EXPECT_DOUBLE_EQ(cli.getDouble("theta"), 0.9);
    EXPECT_EQ(cli.getString("machine"), "r10000");
    EXPECT_TRUE(cli.getFlag("full"));
}

TEST(Cli, SpaceSeparatedValue)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n", "256"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.getInt("n"), 256);
}

TEST(Cli, HexIntegerAccepted)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n=0x40"};
    cli.parse(2, argv);
    EXPECT_EQ(cli.getInt("n"), 64);
}

TEST(Cli, HelpTextMentionsAllOptions)
{
    Cli cli = makeCli();
    const std::string help = cli.helpText();
    EXPECT_NE(help.find("--n"), std::string::npos);
    EXPECT_NE(help.find("--theta"), std::string::npos);
    EXPECT_NE(help.find("--machine"), std::string::npos);
    EXPECT_NE(help.find("--full"), std::string::npos);
    EXPECT_NE(help.find("--help"), std::string::npos);
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, UnknownOptionIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(CliDeathTest, MalformedIntIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n=abc"};
    cli.parse(2, argv);
    EXPECT_EXIT((void)cli.getInt("n"), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(CliDeathTest, MissingValueIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(CliDeathTest, PositionalArgumentIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "stray"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "positional");
}

TEST(CliDeathTest, FlagWithValueIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--full=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "takes no value");
}

} // namespace
