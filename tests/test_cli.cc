/** @file Unit tests for support/cli.hh. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/cli.hh"
#include "threads/scheduler.hh"
#include "threads/tour.hh"

namespace
{

using lsched::Cli;

Cli
makeCli()
{
    Cli cli("prog", "test program");
    cli.addInt("n", 64, "problem size");
    cli.addDouble("theta", 0.5, "opening angle");
    cli.addString("machine", "r8000", "machine model");
    cli.addFlag("full", "paper-scale run");
    return cli;
}

TEST(Cli, DefaultsApply)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    EXPECT_EQ(cli.getInt("n"), 64);
    EXPECT_DOUBLE_EQ(cli.getDouble("theta"), 0.5);
    EXPECT_EQ(cli.getString("machine"), "r8000");
    EXPECT_FALSE(cli.getFlag("full"));
}

TEST(Cli, EqualsSyntax)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n=128", "--theta=0.9",
                          "--machine=r10000", "--full"};
    cli.parse(5, argv);
    EXPECT_EQ(cli.getInt("n"), 128);
    EXPECT_DOUBLE_EQ(cli.getDouble("theta"), 0.9);
    EXPECT_EQ(cli.getString("machine"), "r10000");
    EXPECT_TRUE(cli.getFlag("full"));
}

TEST(Cli, SpaceSeparatedValue)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n", "256"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.getInt("n"), 256);
}

TEST(Cli, HexIntegerAccepted)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n=0x40"};
    cli.parse(2, argv);
    EXPECT_EQ(cli.getInt("n"), 64);
}

TEST(Cli, HelpTextMentionsAllOptions)
{
    Cli cli = makeCli();
    const std::string help = cli.helpText();
    EXPECT_NE(help.find("--n"), std::string::npos);
    EXPECT_NE(help.find("--theta"), std::string::npos);
    EXPECT_NE(help.find("--machine"), std::string::npos);
    EXPECT_NE(help.find("--full"), std::string::npos);
    EXPECT_NE(help.find("--help"), std::string::npos);
}

std::string g_hookPlacement, g_hookBackend, g_hookSched;

void
captureSched(const std::string &placement, const std::string &backend,
             const std::string &sched)
{
    g_hookPlacement = placement;
    g_hookBackend = backend;
    g_hookSched = sched;
}

TEST(Cli, SchedFlagsForwardToTheHook)
{
    // Capture-and-restore: leave the scheduler library's real hook in
    // place for the rest of the binary.
    const lsched::CliSchedHook previous =
        lsched::setCliSchedHook(&captureSched);
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--placement=roundrobin", "--sched",
                          "tour=snake,stream_max_pending=4096"};
    cli.parse(4, argv);
    lsched::setCliSchedHook(previous);
    EXPECT_EQ(g_hookPlacement, "roundrobin");
    EXPECT_EQ(g_hookBackend, "");
    EXPECT_EQ(g_hookSched, "tour=snake,stream_max_pending=4096");
}

using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, UnknownOptionIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(CliDeathTest, MalformedIntIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n=abc"};
    cli.parse(2, argv);
    EXPECT_EXIT((void)cli.getInt("n"), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(CliDeathTest, MissingValueIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--n"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "needs a value");
}

TEST(CliDeathTest, PositionalArgumentIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "stray"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "positional");
}

TEST(CliDeathTest, FlagWithValueIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--full=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "takes no value");
}

// The --sched end-to-end checks run in the EXPECT_EXIT child so the
// process-global override list never leaks into other tests.

[[noreturn]] void
parseSchedAndExitZeroIfApplied()
{
    Cli cli("prog", "t");
    const char *argv[] = {"prog", "--sched",
                          "tour=snake,stream_seal_threshold=77"};
    cli.parse(3, argv);
    lsched::threads::LocalityScheduler s;
    const bool applied =
        s.config().tour == lsched::threads::TourPolicy::SortedSnake &&
        s.config().streamSealThreshold == 77;
    std::exit(applied ? 0 : 7);
}

TEST(CliDeathTest, SchedOverridesReachNewSchedulers)
{
    EXPECT_EXIT(parseSchedAndExitZeroIfApplied(),
                ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, SchedUnknownKeyIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--sched=bogus_knob=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown config key");
}

TEST(CliDeathTest, SchedBadValueIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--sched=tour=sideways"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "bad value");
}

TEST(CliDeathTest, SchedPairWithoutEqualsIsFatal)
{
    Cli cli = makeCli();
    const char *argv[] = {"prog", "--sched=snake"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "expected key=value");
}

} // namespace
