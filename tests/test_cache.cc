/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"

namespace
{

using lsched::cachesim::Cache;
using lsched::cachesim::CacheConfig;

TEST(CacheConfig, GeometryDerivation)
{
    CacheConfig c{"L2", 2 * 1024 * 1024, 128, 4};
    c.validate();
    EXPECT_EQ(c.numLines(), 16384u);
    EXPECT_EQ(c.ways(), 4u);
    EXPECT_EQ(c.numSets(), 4096u);
}

TEST(CacheConfig, FullyAssociativeWays)
{
    CacheConfig c{"FA", 1024, 64, 0};
    c.validate();
    EXPECT_EQ(c.ways(), 16u);
    EXPECT_EQ(c.numSets(), 1u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache({"c", 1024, 64, 2});
    EXPECT_TRUE(cache.accessLine(0, false).miss);
    EXPECT_FALSE(cache.accessLine(0, false).miss);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits(), 1u);
}

TEST(Cache, DirectMappedConflict)
{
    // 4 sets of 1 way; lines 0 and 4 share set 0.
    Cache cache({"c", 256, 64, 1});
    EXPECT_TRUE(cache.accessLine(0, false).miss);
    EXPECT_TRUE(cache.accessLine(4, false).miss);
    EXPECT_TRUE(cache.accessLine(0, false).miss); // evicted by 4
}

TEST(Cache, TwoWayHoldsBothConflictingLines)
{
    // 4 sets of 2 ways.
    Cache cache({"c", 512, 64, 2});
    EXPECT_TRUE(cache.accessLine(0, false).miss);
    EXPECT_TRUE(cache.accessLine(4, false).miss);
    EXPECT_FALSE(cache.accessLine(0, false).miss);
    EXPECT_FALSE(cache.accessLine(4, false).miss);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // One set, 2 ways: lines 0, 4, touch 0, insert 8 -> 4 evicted.
    Cache cache({"c", 128, 64, 2});
    cache.accessLine(0, false);
    cache.accessLine(4, false);
    cache.accessLine(0, false);           // 0 is MRU
    EXPECT_TRUE(cache.accessLine(8, false).miss);
    EXPECT_FALSE(cache.accessLine(0, false).miss); // survived
    EXPECT_TRUE(cache.accessLine(4, false).miss);  // evicted
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache({"c", 128, 64, 1}); // 2 sets, direct-mapped
    cache.accessLine(0, true);      // dirty
    const auto r = cache.accessLine(2, false); // same set 0
    EXPECT_TRUE(r.miss);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, 0u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache cache({"c", 128, 64, 1});
    cache.accessLine(0, false);
    const auto r = cache.accessLine(2, false);
    EXPECT_TRUE(r.miss);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache({"c", 128, 64, 1});
    cache.accessLine(0, false); // clean fill
    cache.accessLine(0, true);  // write hit -> dirty
    const auto r = cache.accessLine(2, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, UpdateIfPresent)
{
    Cache cache({"c", 128, 64, 2});
    cache.accessLine(0, false);
    EXPECT_TRUE(cache.updateIfPresent(0));
    EXPECT_FALSE(cache.updateIfPresent(99));
    // The update marked line 0 dirty.
    cache.accessLine(2, false);
    const auto r = cache.accessLine(4, false); // evicts LRU = 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, 0u);
}

TEST(Cache, UpdateIfPresentDoesNotTouchStats)
{
    Cache cache({"c", 128, 64, 2});
    cache.accessLine(0, false);
    const auto before = cache.stats().accesses;
    cache.updateIfPresent(0);
    EXPECT_EQ(cache.stats().accesses, before);
}

TEST(Cache, ProbeDoesNotDisturbLru)
{
    Cache cache({"c", 128, 64, 2}); // one set, 2 ways
    cache.accessLine(0, false);
    cache.accessLine(1, false); // MRU=1, LRU=0
    EXPECT_TRUE(cache.probeLine(0));
    EXPECT_TRUE(cache.probeLine(1));
    EXPECT_FALSE(cache.probeLine(2));
    // Probe of 0 must not have promoted it.
    cache.accessLine(2, false); // evicts LRU = 0
    EXPECT_FALSE(cache.probeLine(0));
    EXPECT_TRUE(cache.probeLine(1));
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache cache({"c", 128, 64, 2});
    cache.accessLine(0, true);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.probeLine(0));
    EXPECT_TRUE(cache.accessLine(0, false).miss);
}

TEST(Cache, LineOfUsesLineShift)
{
    Cache cache({"c", 1024, 128, 1});
    EXPECT_EQ(cache.lineOf(0), 0u);
    EXPECT_EQ(cache.lineOf(127), 0u);
    EXPECT_EQ(cache.lineOf(128), 1u);
    EXPECT_EQ(cache.lineShift(), 7u);
}

TEST(Cache, FullyAssociativeConfigBehavesLru)
{
    Cache cache({"fa", 256, 64, 0}); // 4 lines fully associative
    for (std::uint64_t l = 0; l < 4; ++l)
        EXPECT_TRUE(cache.accessLine(l, false).miss);
    for (std::uint64_t l = 0; l < 4; ++l)
        EXPECT_FALSE(cache.accessLine(l, false).miss);
    EXPECT_TRUE(cache.accessLine(100, false).miss); // evicts line 0
    EXPECT_TRUE(cache.accessLine(0, false).miss);
    EXPECT_FALSE(cache.accessLine(100, false).miss);
}

} // namespace
