/** @file Unit tests for the timing utilities. */

#include <gtest/gtest.h>

#include <cmath>

#include "support/timer.hh"

namespace
{

using namespace lsched;

TEST(WallTimer, AdvancesMonotonically)
{
    WallTimer t;
    double last = t.seconds();
    for (int i = 0; i < 1000; ++i) {
        const double now = t.seconds();
        EXPECT_GE(now, last);
        last = now;
    }
    EXPECT_GE(last, 0.0);
}

TEST(WallTimer, ResetStartsOver)
{
    WallTimer t;
    volatile double sink = 0;
    for (int i = 0; i < 2000000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    const double before = t.seconds();
    t.reset();
    EXPECT_LT(t.seconds(), before);
}

TEST(CpuTimer, MeasuresBusyWork)
{
    CpuTimer t;
    volatile double sink = 0;
    for (int i = 0; i < 5000000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    // Several million sqrt calls cost measurable CPU time.
    EXPECT_GT(t.seconds(), 0.0);
}

TEST(CpuTimer, NonNegativeAndMonotonic)
{
    CpuTimer t;
    double last = 0;
    for (int i = 0; i < 100; ++i) {
        const double now = t.seconds();
        EXPECT_GE(now, last);
        last = now;
    }
}

TEST(MeasureSecondsPerCall, AveragesOverManyCalls)
{
    int calls = 0;
    const double per_call = measureSecondsPerCall(
        [&] { ++calls; }, 0.01);
    EXPECT_GT(calls, 100);     // a trivial body runs many times
    EXPECT_GE(per_call, 0.0);
    EXPECT_LT(per_call, 0.01); // far less than the whole window
}

TEST(MeasureSecondsPerCall, RunsBodyAtLeastOnce)
{
    bool ran = false;
    measureSecondsPerCall([&] { ran = true; }, 0.0);
    EXPECT_TRUE(ran);
}

} // namespace
