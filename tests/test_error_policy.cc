/**
 * @file
 * Fault containment and error-policy tests: config validation,
 * exception containment under each ErrorPolicy (sequential and
 * parallel), fail-point-driven failures, the runParallel watchdog,
 * fiber fault containment, and the C-boundary error surface.
 *
 * Everything here must stay clean under LSCHED_SANITIZE=thread — no
 * death tests (those live in the main lsched_tests binary).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>

#include "fibers/general_scheduler.hh"
#include "support/error.hh"
#include "support/failpoint.hh"
#include "threads/c_api.hh"
#include "threads/scheduler.hh"

namespace
{

namespace fp = lsched::failpoint;
using namespace lsched::threads;

SchedulerConfig
smallConfig(ErrorPolicy policy = ErrorPolicy::Abort)
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 12;
    c.cacheBytes = 1 << 16;
    c.onError = policy;
    return c;
}

/** Counts executions; throws for tags >= throwFrom && < throwTo. */
struct Body
{
    std::atomic<int> executed{0};
    std::uintptr_t throwFrom = ~std::uintptr_t{0};
    std::uintptr_t throwTo = 0;

    static void
    call(void *self, void *tag)
    {
        auto *b = static_cast<Body *>(self);
        const auto i = reinterpret_cast<std::uintptr_t>(tag);
        if (i >= b->throwFrom && i < b->throwTo)
            throw std::runtime_error("user fault " + std::to_string(i));
        b->executed.fetch_add(1, std::memory_order_relaxed);
    }
};

/** Fork @p n threads spread over bins (hint stride of two blocks). */
void
forkMany(LocalityScheduler &s, Body &body, std::uintptr_t n)
{
    for (std::uintptr_t i = 0; i < n; ++i)
        s.fork(&Body::call, &body, reinterpret_cast<void *>(i),
               static_cast<Hint>(i % 16) * (2u << 12), 0, 0);
}

class ErrorPolicyTest : public ::testing::Test
{
  protected:
    void SetUp() override { fp::disarmAll(); }
    void TearDown() override { fp::disarmAll(); }
};

/** Guard for tests that need the fail-point layer compiled in. */
#define LSCHED_REQUIRE_FAILPOINTS()                                         \
    do {                                                                    \
        if (!fp::kCompiled)                                                 \
            GTEST_SKIP() << "fail points compiled out";                     \
    } while (0)

// ---------------------------------------------------------------- config

TEST(ConfigValidation, ZeroDimsIsRejected)
{
    SchedulerConfig c = smallConfig();
    c.dims = 0;
    EXPECT_THROW(LocalityScheduler{c}, lsched::ConfigError);
}

TEST(ConfigValidation, OversizedDimsIsRejected)
{
    SchedulerConfig c = smallConfig();
    c.dims = kMaxDims + 1;
    EXPECT_THROW(LocalityScheduler{c}, lsched::ConfigError);
}

TEST(ConfigValidation, ZeroCacheBytesIsRejected)
{
    SchedulerConfig c = smallConfig();
    c.cacheBytes = 0;
    c.blockBytes = 0;
    // Forced flat: with topology=auto a discovered L2 size would fill
    // cacheBytes in and the rejection under test would never fire.
    c.topology = "flat";
    EXPECT_THROW(LocalityScheduler{c}, lsched::ConfigError);
}

TEST(ConfigValidation, ZeroGroupCapacityIsRejected)
{
    SchedulerConfig c = smallConfig();
    c.groupCapacity = 0;
    EXPECT_THROW(LocalityScheduler{c}, lsched::ConfigError);
}

TEST(ConfigValidation, CacheTooSmallForDimsIsRejected)
{
    SchedulerConfig c = smallConfig();
    c.cacheBytes = 2; // 2 / 3 dims -> blockBytes 0
    c.blockBytes = 0;
    c.dims = 3;
    EXPECT_THROW(LocalityScheduler{c}, lsched::ConfigError);
}

TEST(ConfigValidation, OversizedBlockIsAcceptedWithAWarning)
{
    // Figure 4 sweeps block sizes past the cache on purpose; this must
    // stay legal (it warns on stderr but configures fine).
    SchedulerConfig c = smallConfig();
    c.blockBytes = c.cacheBytes * 8;
    LocalityScheduler s(c);
    EXPECT_EQ(s.config().blockBytes, c.cacheBytes * 8);
}

TEST(ConfigValidation, FailedConfigureLeavesTheOldConfigInPlace)
{
    LocalityScheduler s(smallConfig());
    SchedulerConfig bad = smallConfig();
    bad.groupCapacity = 0;
    EXPECT_THROW(s.configure(bad), lsched::ConfigError);
    EXPECT_EQ(s.config().groupCapacity,
              smallConfig().groupCapacity); // untouched
    Body body;
    forkMany(s, body, 4);
    s.run();
    EXPECT_EQ(body.executed.load(), 4);
}

// ------------------------------------------------------------ sequential

TEST_F(ErrorPolicyTest, AbortPropagatesAndTheRunGuardRestoresState)
{
    LocalityScheduler s(smallConfig(ErrorPolicy::Abort));
    Body body;
    body.throwFrom = 3;
    body.throwTo = 4;
    forkMany(s, body, 8);
    EXPECT_THROW(s.run(), std::runtime_error);
    // Unwound mid-tour, yet the scheduler is reset and reusable.
    EXPECT_EQ(s.stats().pendingThreads, 0u);
    EXPECT_EQ(s.lastFaultCount(), 0u); // Abort does not contain
    Body fresh;
    forkMany(s, fresh, 8);
    s.run();
    EXPECT_EQ(fresh.executed.load(), 8);
}

TEST_F(ErrorPolicyTest, StopTourRethrowsTheFirstFaultOnce)
{
    LocalityScheduler s(smallConfig(ErrorPolicy::StopTour));
    Body body;
    body.throwFrom = 4;
    body.throwTo = 5;
    forkMany(s, body, 32);
    try {
        s.run();
        FAIL() << "fault was not rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()), "user fault 4");
    }
    EXPECT_EQ(s.lastFaultCount(), 1u);
    EXPECT_EQ(s.stats().faultedThreads, 1u);
    // The tour stopped: not every remaining thread ran.
    EXPECT_LT(body.executed.load(), 31);
    EXPECT_EQ(s.stats().pendingThreads, 0u);
}

TEST_F(ErrorPolicyTest, ContinueAndCollectRunsEverythingAndReports)
{
    LocalityScheduler s(smallConfig(ErrorPolicy::ContinueAndCollect));
    Body body;
    body.throwFrom = 10;
    body.throwTo = 13;
    forkMany(s, body, 32);
    EXPECT_NO_THROW(s.run());
    EXPECT_EQ(body.executed.load(), 29);
    EXPECT_EQ(s.lastFaultCount(), 3u);
    ASSERT_EQ(s.lastFaults().size(), 3u);
    EXPECT_NE(s.lastFaults()[0].message.find("user fault"),
              std::string::npos);
    EXPECT_EQ(s.stats().faultedThreads, 3u);
    // The next clean run clears the per-run fault report.
    Body fresh;
    forkMany(s, fresh, 4);
    s.run();
    EXPECT_EQ(s.lastFaultCount(), 0u);
    EXPECT_EQ(s.stats().faultedThreads, 3u); // lifetime counter stays
}

// -------------------------------------------------------------- parallel

TEST_F(ErrorPolicyTest, StopTourParallelRethrowsExactlyOnceAndRecovers)
{
    // The acceptance scenario: a fault mid-tour under runParallel(4)
    // surfaces exactly once on the caller after the workers join, and
    // the scheduler takes a fresh batch afterwards.
    LocalityScheduler s(smallConfig(ErrorPolicy::StopTour));
    Body body;
    body.throwFrom = 100;
    body.throwTo = 101;
    forkMany(s, body, 200);
    int caught = 0;
    try {
        s.runParallel(4);
    } catch (const std::runtime_error &e) {
        ++caught;
        EXPECT_EQ(std::string(e.what()), "user fault 100");
    }
    EXPECT_EQ(caught, 1);
    EXPECT_GE(s.lastFaultCount(), 1u);
    // Not running: reconfigure succeeds (it throws UsageError during a
    // run), and a fresh batch executes completely.
    EXPECT_NO_THROW(s.configure(s.config()));
    Body fresh;
    forkMany(s, fresh, 50);
    EXPECT_EQ(s.runParallel(4), 50u);
    EXPECT_EQ(fresh.executed.load(), 50);
    EXPECT_EQ(s.lastFaultCount(), 0u);
    EXPECT_EQ(s.stats().pendingThreads, 0u);
}

TEST_F(ErrorPolicyTest, ContinueAndCollectParallelRunsAllSurvivors)
{
    LocalityScheduler s(smallConfig(ErrorPolicy::ContinueAndCollect));
    Body body;
    body.throwFrom = 40;
    body.throwTo = 45;
    forkMany(s, body, 100);
    EXPECT_EQ(s.runParallel(4), 95u);
    EXPECT_EQ(body.executed.load(), 95);
    EXPECT_EQ(s.lastFaultCount(), 5u);
    EXPECT_EQ(s.lastFaults().size(), 5u);
}

// ------------------------------------------------------------ fail points

TEST_F(ErrorPolicyTest, GroupPoolAllocationFailureSurfacesAsBadAlloc)
{
    LSCHED_REQUIRE_FAILPOINTS();
    LocalityScheduler s(smallConfig());
    ASSERT_TRUE(fp::arm("grouppool.allocate", "hit=1"));
    Body body;
    EXPECT_THROW(forkMany(s, body, 1), std::bad_alloc);
    fp::disarmAll();
    // The failed fork left the scheduler consistent.
    forkMany(s, body, 4);
    s.run();
    EXPECT_EQ(body.executed.load(), 4);
}

TEST_F(ErrorPolicyTest, BinTableGrowthFailureSurfacesAsBadAlloc)
{
    LSCHED_REQUIRE_FAILPOINTS();
    LocalityScheduler s(smallConfig());
    ASSERT_TRUE(fp::arm("bintable.grow", "hit=1"));
    Body body;
    EXPECT_THROW(forkMany(s, body, 1), std::bad_alloc);
    fp::disarmAll();
    forkMany(s, body, 4);
    s.run();
    EXPECT_EQ(body.executed.load(), 4);
}

TEST_F(ErrorPolicyTest, BinExecuteFailPointStopsAParallelTour)
{
    LSCHED_REQUIRE_FAILPOINTS();
    // Deterministic mid-tour injection without a throwing body: the
    // second bin dispatched anywhere hits the armed site.
    LocalityScheduler s(smallConfig(ErrorPolicy::StopTour));
    ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=2"));
    Body body;
    forkMany(s, body, 64);
    try {
        s.runParallel(4);
        FAIL() << "injected fault was not rethrown";
    } catch (const fp::Injected &e) {
        EXPECT_EQ(e.site(), "sched.bin.execute");
    }
    EXPECT_EQ(s.lastFaultCount(), 1u);
    fp::disarmAll();
    Body fresh;
    forkMany(s, fresh, 16);
    EXPECT_EQ(s.runParallel(4), 16u);
}

TEST_F(ErrorPolicyTest, BinExecuteFailPointIsContainedSequentially)
{
    LSCHED_REQUIRE_FAILPOINTS();
    LocalityScheduler s(smallConfig(ErrorPolicy::ContinueAndCollect));
    ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=1"));
    Body body;
    forkMany(s, body, 8);
    EXPECT_NO_THROW(s.run());
    EXPECT_EQ(s.lastFaultCount(), 1u);
    // The bin-level fault is contained; every thread still runs.
    EXPECT_EQ(body.executed.load(), 8);
}

// -------------------------------------------------------------- watchdog

TEST_F(ErrorPolicyTest, WatchdogWarnsWhenATourOverrunsItsDeadline)
{
    SchedulerConfig c = smallConfig();
    c.watchdogMillis = 20;
    LocalityScheduler s(c);
    struct Sleeper
    {
        static void
        call(void *, void *)
        {
            // Long enough that even a starved monitor thread (one-CPU
            // CI box, parallel TSan jobs) gets a deadline check in.
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
    };
    s.fork(&Sleeper::call, nullptr, nullptr, 0, 0);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(s.runParallel(2), 1u);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("watchdog"), std::string::npos) << err;
}

TEST_F(ErrorPolicyTest, WatchdogStaysQuietOnAFastTour)
{
    SchedulerConfig c = smallConfig();
    c.watchdogMillis = 10'000;
    LocalityScheduler s(c);
    Body body;
    forkMany(s, body, 16);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(s.runParallel(2), 16u);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("watchdog"), std::string::npos) << err;
}

// ---------------------------------------------------------------- fibers

TEST_F(ErrorPolicyTest, FiberFaultRethrowsAndResetsByDefault)
{
    lsched::fibers::GeneralScheduler sched;
    sched.fork(
        [](void *) { throw std::runtime_error("fiber fault"); },
        nullptr);
    EXPECT_THROW(sched.run(), std::runtime_error);
    EXPECT_EQ(sched.liveFibers(), 0u);
    static std::atomic<int> ran{0};
    sched.fork([](void *) { ran.fetch_add(1); }, nullptr);
    EXPECT_EQ(sched.run(), 1u);
    EXPECT_EQ(ran.load(), 1);
}

TEST_F(ErrorPolicyTest, FiberFaultsAreCollectedUnderContinue)
{
    lsched::fibers::GeneralSchedulerConfig config;
    config.onError = ErrorPolicy::ContinueAndCollect;
    lsched::fibers::GeneralScheduler sched(config);
    static std::atomic<int> ran{0};
    ran = 0;
    sched.fork([](void *) { ran.fetch_add(1); }, nullptr);
    sched.fork(
        [](void *) { throw std::runtime_error("fiber fault"); },
        nullptr);
    sched.fork([](void *) { ran.fetch_add(1); }, nullptr);
    EXPECT_EQ(sched.run(), 2u);
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(sched.lastFaultCount(), 1u);
    ASSERT_EQ(sched.lastFaults().size(), 1u);
    EXPECT_EQ(sched.lastFaults()[0].message, "fiber fault");
    EXPECT_EQ(sched.faultedFibers(), 1u);
}

TEST_F(ErrorPolicyTest, FiberFaultAfterYieldIsStillContained)
{
    lsched::fibers::GeneralSchedulerConfig config;
    config.onError = ErrorPolicy::ContinueAndCollect;
    lsched::fibers::GeneralScheduler sched(config);
    sched.fork(
        [](void *) {
            lsched::fibers::GeneralScheduler::yield();
            throw std::runtime_error("late fault");
        },
        nullptr);
    EXPECT_EQ(sched.run(), 0u);
    EXPECT_EQ(sched.lastFaultCount(), 1u);
}

// ------------------------------------------------------------ C boundary

TEST_F(ErrorPolicyTest, CApiRecordsAndClearsErrors)
{
    th_clear_error();
    EXPECT_EQ(th_last_error(), nullptr);
    th_fork(nullptr, nullptr, nullptr, nullptr, nullptr, nullptr);
    ASSERT_NE(th_last_error(), nullptr);
    EXPECT_NE(std::string(th_last_error()).find("NULL"),
              std::string::npos);
    th_clear_error();
    EXPECT_EQ(th_last_error(), nullptr);
}

TEST_F(ErrorPolicyTest, CApiErrorHandlerHookIsInvoked)
{
    static std::string seen;
    static int calls = 0;
    seen.clear();
    calls = 0;
    th_set_error_handler(
        [](const char *message, void *user) {
            seen = message;
            *static_cast<int *>(user) += 1;
        },
        &calls);
    th_fork(nullptr, nullptr, nullptr, nullptr, nullptr, nullptr);
    th_set_error_handler(nullptr, nullptr);
    th_clear_error();
    EXPECT_EQ(calls, 1);
    EXPECT_NE(seen.find("NULL"), std::string::npos);
}

TEST_F(ErrorPolicyTest, CApiFailpointArmRejectsBadSpecs)
{
    LSCHED_REQUIRE_FAILPOINTS();
    th_clear_error();
    EXPECT_EQ(th_failpoint_arm("test.c", "bogus"), -1);
    ASSERT_NE(th_last_error(), nullptr);
    EXPECT_EQ(th_failpoint_arm("test.c", "always"), 0);
    EXPECT_TRUE(fp::shouldFail("test.c"));
    th_failpoint_disarm("test.c");
    EXPECT_FALSE(fp::shouldFail("test.c"));
    th_failpoint_disarm_all();
    th_clear_error();
}

TEST_F(ErrorPolicyTest, ObsExportersRejectNullPaths)
{
    EXPECT_EQ(th_trace_write(nullptr), -1);
    EXPECT_EQ(th_metrics_write(nullptr), -1);
}

TEST_F(ErrorPolicyTest, ObsExportersFailCleanlyUnderInjection)
{
    LSCHED_REQUIRE_FAILPOINTS();
    ASSERT_TRUE(fp::arm("obs.trace.write", "always"));
    ASSERT_TRUE(fp::arm("obs.metrics.write", "always"));
    EXPECT_EQ(th_trace_write("/tmp/lsched_fault_trace.json"), -1);
    EXPECT_EQ(th_metrics_write("/tmp/lsched_fault_metrics.txt"), -1);
    fp::disarmAll();
    // Cleanly again once disarmed.
    EXPECT_EQ(th_metrics_write("/tmp/lsched_fault_metrics.txt"), 0);
    std::remove("/tmp/lsched_fault_metrics.txt");
}

} // namespace
