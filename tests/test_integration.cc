/**
 * @file Integration tests: the paper's headline claims, checked end to
 * end on proportionally scaled machines (DESIGN.md substitution 5).
 * These exercise scheduler + workloads + cache simulator together and
 * assert the *shape* of each result: who wins and roughly by how much.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "machine/machine_config.hh"
#include "threads/scheduler.hh"
#include "workloads/matmul.hh"
#include "workloads/nbody.hh"
#include "workloads/pde.hh"
#include "workloads/sor.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;
using harness::SimOutcome;
using harness::simulateOn;

/**
 * R8000 with caches shrunk 32x: L2 = 64 KB, L1 = 8 KB. Problem sizes
 * below keep the paper's data-size : L2-size ratios (DESIGN.md
 * substitution 5), and threads stay coarse enough (hundreds of
 * iterations) that fork/run overhead keeps its paper-scale proportion.
 */
machine::MachineConfig
scaledMachine()
{
    return machine::scaled(machine::powerIndigo2R8000(), 32);
}

TEST(IntegrationMatmul, ThreadedRemovesMostL2CapacityMisses)
{
    const std::size_t n = 256; // 512 KB per matrix vs 64 KB L2
    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);
    const auto machine = scaledMachine();

    const SimOutcome untiled =
        simulateOn(machine, [&](SimModel &m) {
            Matrix c(n, n);
            matmulInterchanged(a, b, c, m);
        });
    const SimOutcome threaded =
        simulateOn(machine, [&](SimModel &m) {
            Matrix c(n, n);
            threads::SchedulerConfig cfg;
            cfg.dims = 2;
            cfg.cacheBytes = machine.l2Size();
            cfg.blockBytes = machine.l2Size() / 2;
            threads::LocalityScheduler sched(cfg);
            matmulThreaded(a, b, c, sched, m);
        });

    // Untiled is dominated by L2 capacity misses (paper Table 3)...
    EXPECT_GT(untiled.l2.capacityMisses,
              untiled.l2.compulsoryMisses * 5);
    // ...and threading eliminates the bulk of them.
    EXPECT_LT(threaded.l2.capacityMisses,
              untiled.l2.capacityMisses / 5);
    EXPECT_LT(threaded.l2.misses, untiled.l2.misses / 3);
    // The crude model then predicts a clear speedup. Paper: 5x
    // measured, ~2x by its own crude analysis; at 1/32 scale the
    // (unchanged) L1-miss term weighs relatively more, so the
    // modelled ratio lands near 1.5.
    EXPECT_GT(untiled.estimatedSeconds(machine) /
                  threaded.estimatedSeconds(machine),
              1.4);
}

TEST(IntegrationMatmul, TiledBeatsThreadedWhichBeatsUntiled)
{
    const std::size_t n = 256;
    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);
    const auto machine = scaledMachine();
    const auto l1 = machine.caches.l1d.sizeBytes;
    const auto l2 = machine.l2Size();

    const SimOutcome untiled = simulateOn(machine, [&](SimModel &m) {
        Matrix c(n, n);
        matmulInterchanged(a, b, c, m);
    });
    const SimOutcome tiled = simulateOn(machine, [&](SimModel &m) {
        Matrix c(n, n);
        matmulTiledTransposed(a, b, c, m, l1, l2);
    });
    const SimOutcome threaded = simulateOn(machine, [&](SimModel &m) {
        Matrix c(n, n);
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.cacheBytes = l2;
        cfg.blockBytes = l2 / 2;
        threads::LocalityScheduler sched(cfg);
        matmulThreaded(a, b, c, sched, m);
    });

    const double t_untiled = untiled.estimatedSeconds(machine);
    const double t_tiled = tiled.estimatedSeconds(machine);
    const double t_threaded = threaded.estimatedSeconds(machine);
    // Paper Table 2 ordering: tiled < threaded < untiled, with tiled
    // ahead of threaded because it also tiles registers and L1.
    EXPECT_LT(t_tiled, t_threaded);
    EXPECT_LT(t_threaded, t_untiled);
    // Tiled also reduces total references (register tiling).
    EXPECT_LT(tiled.dataRefs, untiled.dataRefs);
    EXPECT_LT(tiled.ifetches, untiled.ifetches);
}

TEST(IntegrationPde, FusedVariantsHalveL2CapacityMisses)
{
    const std::size_t n = 256; // three ~530 KB arrays vs 64 KB L2
    const unsigned iters = 5;
    const auto machine = scaledMachine();

    const SimOutcome regular = simulateOn(machine, [&](SimModel &m) {
        PdeGrid g(n);
        g.init(7);
        pdeRegular(g, iters, m);
    });
    const SimOutcome threaded = simulateOn(machine, [&](SimModel &m) {
        PdeGrid g(n);
        g.init(7);
        threads::SchedulerConfig cfg;
        cfg.cacheBytes = machine.l2Size();
        threads::LocalityScheduler sched(cfg);
        pdeThreaded(g, iters, sched, m);
    });

    // Paper Table 5: threading avoids ~50% of L2 capacity misses and
    // clearly lowers estimated time.
    EXPECT_LT(threaded.l2.capacityMisses,
              regular.l2.capacityMisses * 7 / 10);
    EXPECT_LT(threaded.estimatedSeconds(machine),
              regular.estimatedSeconds(machine));
}

TEST(IntegrationSor, TiledAndThreadedRemoveCapacityMisses)
{
    const std::size_t n = 256; // 512 KB array vs 64 KB L2
    const unsigned t = 8;
    const auto machine = scaledMachine();
    // Cross-tile-column reuse in the 2-D skewed tiling needs the
    // (s + 2t)-column margin to stay L2-resident:
    // (s + 2t) * n * 8 <= ~0.6 L2, the ratio behind the paper's
    // s = 18, t = 30, n = 2005 on a 2 MB cache. Here: 20 columns *
    // 2 KB = 40 KB of 64 KB.
    const std::size_t s = 4;

    const SimOutcome untiled = simulateOn(machine, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        sorUntiled(a, t, m);
    });
    const SimOutcome tiled = simulateOn(machine, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        sorHandTiled(a, t, m, s);
    });
    const SimOutcome threaded = simulateOn(machine, [&](SimModel &m) {
        Matrix a = sorInit(n, 5);
        threads::SchedulerConfig cfg;
        cfg.cacheBytes = machine.l2Size();
        threads::LocalityScheduler sched(cfg);
        sorThreaded(a, t, sched, m);
    });

    // Paper Table 7: untiled L2 misses are nearly all capacity; both
    // alternatives remove almost all of them.
    EXPECT_GT(untiled.l2.capacityMisses,
              untiled.l2.compulsoryMisses * 3);
    EXPECT_LT(tiled.l2.capacityMisses,
              untiled.l2.capacityMisses / 10);
    EXPECT_LT(threaded.l2.capacityMisses,
              untiled.l2.capacityMisses / 10);
    // And the threaded version stays close to untiled in references.
    EXPECT_LT(threaded.dataRefs, untiled.dataRefs * 11 / 10);
}

TEST(IntegrationNBody, ThreadingCutsL2CapacityMisses)
{
    // The walk footprint of one body (~hundreds of tree nodes) must
    // fit the scaled L2 for spatial grouping to pay off, as it does
    // at paper scale; scale 8 gives a 256 KB L2 against ~1 MB of
    // bodies + tree.
    const std::size_t bodies = 4096;
    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), 8);

    NBodyConfig cfg;
    cfg.bodies = bodies;
    cfg.seed = 13;

    const SimOutcome unthreaded = simulateOn(machine, [&](SimModel &m) {
        BarnesHut sim(cfg);
        sim.stepUnthreaded(m);
    });
    const SimOutcome threaded = simulateOn(machine, [&](SimModel &m) {
        BarnesHut sim(cfg);
        threads::SchedulerConfig scfg;
        scfg.dims = 3;
        scfg.cacheBytes = machine.l2Size();
        threads::LocalityScheduler sched(scfg);
        sim.stepThreaded(sched, m, 4 * machine.l2Size() / 3);
    });

    // Paper Table 9: L2 capacity misses drop by ~2.3x; total misses
    // drop clearly; references grow only slightly.
    EXPECT_LT(threaded.l2.capacityMisses,
              unthreaded.l2.capacityMisses * 3 / 4);
    EXPECT_LT(threaded.l2.misses, unthreaded.l2.misses);
    EXPECT_LT(threaded.ifetches, unthreaded.ifetches * 11 / 10);
}

TEST(IntegrationBlockSize, OversizedBlocksDegradeMatmul)
{
    // Paper Figure 4: performance is flat while the block-dimension
    // sum stays within L2 and degrades sharply beyond it.
    const std::size_t n = 256;
    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);
    const auto machine = scaledMachine();
    const auto l2 = machine.l2Size();

    auto run_with_block = [&](std::uint64_t block) {
        return simulateOn(machine, [&](SimModel &m) {
            Matrix c(n, n);
            threads::SchedulerConfig cfg;
            cfg.dims = 2;
            cfg.cacheBytes = l2;
            cfg.blockBytes = block;
            threads::LocalityScheduler sched(cfg);
            matmulThreaded(a, b, c, sched, m);
        });
    };

    const SimOutcome half = run_with_block(l2 / 2);
    const SimOutcome quarter = run_with_block(l2 / 4);
    const SimOutcome huge = run_with_block(l2 * 8);

    // Within-cache blocks perform comparably...
    const double t_half = half.estimatedSeconds(machine);
    const double t_quarter = quarter.estimatedSeconds(machine);
    EXPECT_LT(std::abs(t_half - t_quarter) / t_half, 0.35);
    // ...but blocks larger than the cache lose the clustering: the
    // L2 misses explode (the Figure-4 cliff) and the modelled time
    // degrades.
    EXPECT_GT(huge.l2.misses, 5 * half.l2.misses);
    EXPECT_GT(huge.estimatedSeconds(machine), 1.3 * t_half);
}

} // namespace
