/** @file Unit tests for replacement and write policies. */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "cachesim/hierarchy.hh"
#include "support/prng.hh"

namespace
{

using namespace lsched::cachesim;

CacheConfig
base(Replacement r = Replacement::Lru,
     WritePolicy w = WritePolicy::WriteBackAllocate)
{
    CacheConfig c{"c", 256, 64, 2};
    c.replacement = r;
    c.writePolicy = w;
    return c;
}

TEST(ReplacementFifo, DoesNotPromoteOnHit)
{
    // One set of 2 ways (capacity 128 here).
    CacheConfig cfg{"c", 128, 64, 2};
    cfg.replacement = Replacement::Fifo;
    Cache cache(cfg);
    cache.accessLine(0, false); // fill order: 0
    cache.accessLine(1, false); // fill order: 0, 1
    cache.accessLine(0, false); // hit; FIFO order unchanged
    cache.accessLine(2, false); // evicts the OLDEST fill = 0
    EXPECT_TRUE(cache.probeLine(1));
    EXPECT_TRUE(cache.probeLine(2));
    EXPECT_FALSE(cache.probeLine(0));
}

TEST(ReplacementLru, PromotesOnHit)
{
    CacheConfig cfg{"c", 128, 64, 2};
    Cache cache(cfg);
    cache.accessLine(0, false);
    cache.accessLine(1, false);
    cache.accessLine(0, false); // LRU promotes 0
    cache.accessLine(2, false); // evicts 1
    EXPECT_TRUE(cache.probeLine(0));
    EXPECT_FALSE(cache.probeLine(1));
}

TEST(ReplacementRandom, StaysWithinCapacityAndIsDeterministic)
{
    CacheConfig cfg{"c", 512, 64, 4};
    cfg.replacement = Replacement::Random;
    auto run = [&] {
        Cache cache(cfg);
        lsched::Prng prng(3);
        std::uint64_t misses = 0;
        for (int i = 0; i < 20000; ++i)
            misses += cache.accessLine(prng.nextBelow(32), false).miss;
        return misses;
    };
    const auto first = run();
    EXPECT_EQ(first, run()); // seeded victim selection replays
    EXPECT_GT(first, 8u);    // compulsory at least
    EXPECT_LT(first, 20000u);
}

TEST(ReplacementRandom, FillsInvalidWaysFirst)
{
    CacheConfig cfg{"c", 256, 64, 4}; // one set, 4 ways
    cfg.replacement = Replacement::Random;
    Cache cache(cfg);
    for (std::uint64_t l = 0; l < 4; ++l)
        cache.accessLine(l, false);
    // All four must be resident: no premature random eviction.
    for (std::uint64_t l = 0; l < 4; ++l)
        EXPECT_TRUE(cache.probeLine(l)) << "line " << l;
}

TEST(WriteThrough, StoresPropagateOnHitAndMiss)
{
    Cache cache(base(Replacement::Lru,
                     WritePolicy::WriteThroughNoAllocate));
    // Store miss: propagate, do not allocate.
    auto r = cache.accessLine(0, true);
    EXPECT_TRUE(r.miss);
    EXPECT_TRUE(r.propagateWrite);
    EXPECT_FALSE(cache.probeLine(0));
    // Load fills the line.
    cache.accessLine(0, false);
    EXPECT_TRUE(cache.probeLine(0));
    // Store hit: still propagates, still no dirty data.
    r = cache.accessLine(0, true);
    EXPECT_FALSE(r.miss);
    EXPECT_TRUE(r.propagateWrite);
}

TEST(WriteThrough, NeverWritesBack)
{
    CacheConfig cfg{"c", 128, 64, 1};
    cfg.writePolicy = WritePolicy::WriteThroughNoAllocate;
    Cache cache(cfg);
    cache.accessLine(0, false);
    cache.accessLine(0, true);  // hit store; line stays clean
    const auto r = cache.accessLine(2, false); // evicts line 0
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(WriteBack, LoadsNeverPropagate)
{
    Cache cache(base());
    const auto r = cache.accessLine(0, false);
    EXPECT_FALSE(r.propagateWrite);
}

TEST(WriteThroughHierarchy, StoresReachL2)
{
    HierarchyConfig cfg;
    cfg.l1i = {"L1I", 1024, 32, 1};
    cfg.l1d = {"L1D", 1024, 32, 1};
    cfg.l1d.writePolicy = WritePolicy::WriteThroughNoAllocate;
    cfg.l2 = {"L2", 8192, 128, 4};
    Hierarchy h(cfg);
    h.load(0, 8);  // fills L1D and L2
    h.store(0, 8); // L1 hit, but the store must still reach L2
    EXPECT_EQ(h.l2Stats().accesses, 2u);
    h.store(4096, 8); // store miss: no L1 fill, L2 write access
    EXPECT_FALSE(h.l1d().probeLine(4096 / 32));
    EXPECT_EQ(h.l2Stats().accesses, 3u);
}

TEST(Policies, LruBeatsFifoAndRandomOnLoopingPattern)
{
    // A pattern with strong recency (repeated small working set plus
    // streaming noise) favours LRU; deterministic seeds make this a
    // stable regression check rather than a statistical one.
    auto misses = [](Replacement r) {
        CacheConfig cfg{"c", 2048, 64, 4};
        cfg.replacement = r;
        Cache cache(cfg);
        lsched::Prng prng(17);
        std::uint64_t count = 0;
        std::uint64_t stream = 1000;
        for (int i = 0; i < 30000; ++i) {
            if (i % 4 == 3) {
                count += cache.accessLine(stream++, false).miss;
            } else {
                count +=
                    cache.accessLine(prng.nextBelow(24), false).miss;
            }
        }
        return count;
    };
    const auto lru = misses(Replacement::Lru);
    const auto fifo = misses(Replacement::Fifo);
    const auto random = misses(Replacement::Random);
    EXPECT_LE(lru, fifo);
    EXPECT_LE(lru, random);
}

} // namespace
