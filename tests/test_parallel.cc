/** @file Unit tests for the SMP extension (runParallel). */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

SchedulerConfig
cfg()
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 16;
    c.groupCapacity = 8;
    return c;
}

struct Counter
{
    std::atomic<std::uint64_t> value{0};

    static void
    bump(void *self, void *)
    {
        static_cast<Counter *>(self)->value.fetch_add(
            1, std::memory_order_relaxed);
    }
};

TEST(ParallelScheduler, RunsEveryThread)
{
    LocalityScheduler s(cfg());
    Counter counter;
    for (std::uintptr_t i = 0; i < 1000; ++i)
        s.fork(&Counter::bump, &counter, nullptr,
               static_cast<Hint>(i * 512), 0);
    EXPECT_EQ(s.runParallel(4), 1000u);
    EXPECT_EQ(counter.value.load(), 1000u);
    EXPECT_EQ(s.pendingThreads(), 0u);
}

TEST(ParallelScheduler, OneWorkerDegradesToSequentialRun)
{
    LocalityScheduler s(cfg());
    Counter counter;
    for (int i = 0; i < 100; ++i)
        s.fork(&Counter::bump, &counter, nullptr, 0, 0);
    EXPECT_EQ(s.runParallel(1), 100u);
    EXPECT_EQ(counter.value.load(), 100u);
}

TEST(ParallelScheduler, BinsStayAtomicPerWorker)
{
    // Threads of one bin must run back to back on a single worker:
    // record (bin, sequence) pairs and check each bin's sequence is
    // strictly increasing with no interleaving gaps from its own bin.
    struct BinLog
    {
        std::atomic<std::uint64_t> clock{0};
        std::vector<std::vector<std::uint64_t>> stamps;
    };
    static BinLog log;
    log.stamps.assign(8, {});

    LocalityScheduler s(cfg());
    struct Arg
    {
        unsigned bin;
    };
    std::vector<Arg> args;
    args.reserve(8 * 50);
    for (unsigned b = 0; b < 8; ++b)
        for (int i = 0; i < 50; ++i)
            args.push_back({b});

    auto body = [](void *arg, void *) {
        const auto *a = static_cast<Arg *>(arg);
        const std::uint64_t t =
            log.clock.fetch_add(1, std::memory_order_relaxed);
        log.stamps[a->bin].push_back(t);
    };
    // NOTE: stamps vectors are only mutated by the single worker that
    // owns the bin (bins are the distribution unit), so no lock.
    for (auto &a : args)
        s.fork(body, &a, nullptr,
               static_cast<Hint>(a.bin) * (1u << 16) * 4, 0);
    s.runParallel(4);

    for (unsigned b = 0; b < 8; ++b) {
        ASSERT_EQ(log.stamps[b].size(), 50u);
        for (std::size_t i = 1; i < 50; ++i)
            EXPECT_LT(log.stamps[b][i - 1], log.stamps[b][i]);
    }
}

TEST(ParallelScheduler, KeepAllowsReRun)
{
    LocalityScheduler s(cfg());
    Counter counter;
    for (int i = 0; i < 64; ++i)
        s.fork(&Counter::bump, &counter, nullptr,
               static_cast<Hint>(i * 4096), 0);
    EXPECT_EQ(s.runParallel(4, true), 64u);
    EXPECT_EQ(s.pendingThreads(), 64u);
    EXPECT_EQ(s.runParallel(4, false), 64u);
    EXPECT_EQ(counter.value.load(), 128u);
    EXPECT_EQ(s.pendingThreads(), 0u);
}

TEST(ParallelScheduler, ZeroWorkersUsesHardwareConcurrency)
{
    LocalityScheduler s(cfg());
    Counter counter;
    for (int i = 0; i < 200; ++i)
        s.fork(&Counter::bump, &counter, nullptr,
               static_cast<Hint>(i * 64), 0);
    EXPECT_EQ(s.runParallel(0), 200u);
    EXPECT_EQ(counter.value.load(), 200u);
}

TEST(ParallelSchedulerDeathTest, ForkFromAWorkerIsFatal)
{
    // The ready list is not synchronized during a parallel tour, so
    // fork() from a worker must die with a diagnostic, not race.
    LocalityScheduler s(cfg());
    struct Ctx
    {
        LocalityScheduler *sched;
    } ctx{&s};
    auto forker = [](void *c, void *) {
        auto *ctx = static_cast<Ctx *>(c);
        auto noop = [](void *, void *) {};
        ctx->sched->fork(noop, nullptr, nullptr, 0, 0);
    };
    s.fork(forker, &ctx, nullptr, 0, 0);
    EXPECT_EXIT(s.runParallel(2), ::testing::ExitedWithCode(1),
                "fork\\(\\) from a thread running under runParallel");
}

TEST(ParallelSchedulerDeathTest, AbortPolicyTerminatesOnHelperFault)
{
    // Historic behavior, kept as the Abort policy: an exception
    // escaping a helper worker reaches std::terminate. Bin 0 parks the
    // caller (worker 0) long enough that the helper owning bin 1 is
    // guaranteed to be the one that hits the fault.
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::Abort;
    LocalityScheduler s(c);
    static std::atomic<bool> blocked;
    blocked.store(true);
    auto blocker = [](void *, void *) {
        // Bounded wait: if the helper's terminate never comes (the
        // regression this test guards against), fall through so the
        // death expectation fails instead of hanging.
        for (int i = 0; i < 10'000 && blocked.load(); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    auto thrower = [](void *, void *) {
        throw std::runtime_error("unhandled worker fault");
    };
    s.fork(blocker, nullptr, nullptr, 0, 0);
    s.fork(thrower, nullptr, nullptr,
           static_cast<Hint>(1) << 20, 0);
    EXPECT_DEATH(s.runParallel(2), "");
    blocked.store(false);
}

TEST(ParallelScheduler, AbortPolicyPropagatesCallerWorkerFault)
{
    // The caller participates as worker 0; an Abort-policy fault in
    // its own segment surfaces as an ordinary exception. The helper
    // must be held on a gate bin in its *own* segment until worker 0
    // has claimed the thrower bin — with a lone bin the helper can
    // steal it first and the fault then surfaces on the helper
    // (std::terminate, the death test's territory), a rare flake under
    // TSan scheduling. The gate only opens after the thrower bin is
    // claimed, so the steal can never happen. Bounded spin: on a
    // regression the gate opens after 10 s and EXPECT_THROW reports.
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::Abort;
    LocalityScheduler s(c);
    static std::atomic<bool> claimed;
    claimed.store(false);
    auto thrower = [](void *, void *) {
        claimed.store(true);
        throw std::runtime_error("caller worker fault");
    };
    auto gate = [](void *, void *) {
        for (int i = 0; i < 10'000 && !claimed.load(); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    s.fork(thrower, nullptr, nullptr, 0, 0);
    s.fork(gate, nullptr, nullptr, static_cast<Hint>(1) << 16, 0);
    EXPECT_THROW(s.runParallel(2), std::runtime_error);
    // The unwind path abandoned the run: state is clean and reusable.
    EXPECT_EQ(s.pendingThreads(), 0u);
    Counter counter;
    s.fork(&Counter::bump, &counter, nullptr, 0, 0);
    EXPECT_EQ(s.runParallel(2), 1u);
    EXPECT_EQ(counter.value.load(), 1u);
}

} // namespace
