/** @file Unit tests for the virtual-to-physical page mapping and
 *  physically-indexed L2 behaviour (paper Section 2.2). */

#include <gtest/gtest.h>

#include <set>

#include "cachesim/hierarchy.hh"
#include "cachesim/page_map.hh"

namespace
{

using namespace lsched::cachesim;

TEST(PageMap, IdentityIsTransparent)
{
    PageMap map(PageMapPolicy::Identity);
    EXPECT_EQ(map.translate(0x12345678), 0x12345678u);
    EXPECT_EQ(map.mappedPages(), 0u);
}

TEST(PageMap, OffsetsWithinPagePreserved)
{
    for (auto policy : {PageMapPolicy::FirstTouch,
                        PageMapPolicy::Random,
                        PageMapPolicy::Colored}) {
        PageMap map(policy, 4096, 8);
        const std::uint64_t base = map.translate(0x7000);
        EXPECT_EQ(map.translate(0x7123), base + 0x123);
        EXPECT_EQ(map.translate(0x7fff), base + 0xfff);
    }
}

TEST(PageMap, TranslationIsStable)
{
    PageMap map(PageMapPolicy::Random, 4096, 8, 42);
    const std::uint64_t first = map.translate(0x10000);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(map.translate(0x10000), first);
    EXPECT_EQ(map.mappedPages(), 1u);
}

TEST(PageMap, FirstTouchAllocatesSequentially)
{
    PageMap map(PageMapPolicy::FirstTouch, 4096);
    EXPECT_EQ(map.translate(0x9000) >> 12, 0u);
    EXPECT_EQ(map.translate(0x3000) >> 12, 1u);
    EXPECT_EQ(map.translate(0xf000) >> 12, 2u);
}

TEST(PageMap, ColoredPreservesPageColour)
{
    const std::uint64_t colors = 8;
    PageMap map(PageMapPolicy::Colored, 4096, colors);
    for (std::uint64_t vpage = 0; vpage < 64; vpage += 7) {
        const std::uint64_t paddr = map.translate(vpage << 12);
        EXPECT_EQ((paddr >> 12) & (colors - 1), vpage & (colors - 1))
            << "vpage " << vpage;
    }
}

TEST(PageMap, RandomSeedIsDeterministic)
{
    PageMap a(PageMapPolicy::Random, 4096, 8, 7);
    PageMap b(PageMapPolicy::Random, 4096, 8, 7);
    for (std::uint64_t p = 0; p < 32; ++p)
        EXPECT_EQ(a.translate(p << 12), b.translate(p << 12));
}

TEST(PageMap, ClearForgetsMappings)
{
    PageMap map(PageMapPolicy::FirstTouch, 4096);
    map.translate(0x5000);
    map.translate(0x9000);
    map.clear();
    EXPECT_EQ(map.mappedPages(), 0u);
    EXPECT_EQ(map.translate(0x9000) >> 12, 0u); // allocation restarts
}

HierarchyConfig
physConfig(PageMapPolicy policy)
{
    HierarchyConfig c;
    c.l1i = {"L1I", 1024, 32, 1};
    c.l1d = {"L1D", 1024, 32, 1};
    c.l2 = {"L2", 64 * 1024, 128, 2};
    c.l2PageMap = policy;
    return c;
}

TEST(PhysicalL2, IdentityAndColoredAgreeOnMissCounts)
{
    // Page colouring is the OS fix that makes a physically-indexed
    // cache behave like a virtually-indexed one (Kessler & Hill):
    // set-conflict behaviour must match Identity exactly.
    Hierarchy ident(physConfig(PageMapPolicy::Identity));
    Hierarchy colored(physConfig(PageMapPolicy::Colored));
    // A strided pattern with heavy set pressure.
    for (int rep = 0; rep < 4; ++rep)
        for (std::uint64_t a = 0; a < (1u << 20); a += 4096)
            for (std::uint64_t o = 0; o < 256; o += 8) {
                ident.load(a + o, 8);
                colored.load(a + o, 8);
            }
    EXPECT_EQ(ident.l2Stats().misses, colored.l2Stats().misses);
    EXPECT_EQ(ident.l2Stats().conflictMisses,
              colored.l2Stats().conflictMisses);
}

TEST(PhysicalL2, RandomMappingPerturbsConflictBehaviour)
{
    // The paper's Section 2.2 point: with random frames, a pattern
    // that is conflict-free virtually can conflict physically (and
    // vice versa). Craft a pathological virtual pattern: pages that
    // all collide in the same L2 sets under identity mapping.
    const auto cfg = physConfig(PageMapPolicy::Identity);
    const std::uint64_t l2_span =
        cfg.l2.numSets() * cfg.l2.lineBytes; // bytes covering all sets
    auto run = [&](PageMapPolicy policy, std::uint64_t seed) {
        HierarchyConfig c = physConfig(policy);
        c.pageMapSeed = seed;
        Hierarchy h(c);
        // 16 pages exactly one L2-span apart: same sets virtually.
        for (int rep = 0; rep < 50; ++rep)
            for (std::uint64_t p = 0; p < 16; ++p)
                h.load(p * l2_span * 2, 8);
        return h.l2Stats().misses;
    };
    const auto virt = run(PageMapPolicy::Identity, 1);
    const auto phys = run(PageMapPolicy::Random, 1);
    // Virtually: 16 lines -> one 2-way set, total conflict thrash.
    // Physically-random: frames scatter over the page-number index
    // bits (the offset bits are pinned by the page-aligned pattern),
    // which relieves a large part of the thrash — the Section 2.2
    // effect in the favourable direction.
    EXPECT_GT(virt, phys * 2);
}

TEST(PhysicalL2, L1StaysVirtuallyIndexed)
{
    // Only the L2 is physically indexed (like the SGI machines whose
    // L1s are virtually indexed): L1 hit behaviour must be identical
    // under any mapping.
    Hierarchy ident(physConfig(PageMapPolicy::Identity));
    Hierarchy random(physConfig(PageMapPolicy::Random));
    for (std::uint64_t a = 0; a < (1u << 16); a += 8) {
        ident.load(a, 8);
        random.load(a, 8);
    }
    EXPECT_EQ(ident.l1dStats().misses, random.l1dStats().misses);
}

} // namespace
