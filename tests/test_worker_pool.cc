/**
 * @file
 * Tests for the persistent work-stealing worker pool behind
 * runParallel(): exactly-once bin execution over skewed occupancy,
 * pool persistence (no OS threads after the first tour), cold-spawn
 * accounting, forced stealing, and StopTour deque draining.
 *
 * Everything here must stay clean under LSCHED_SANITIZE=thread — no
 * death tests (those live in the main lsched_tests binary).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/failpoint.hh"
#include "threads/scheduler.hh"

namespace
{

namespace fp = lsched::failpoint;
using namespace lsched::threads;

SchedulerConfig
cfg()
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 12;
    c.cacheBytes = 1 << 16;
    c.groupCapacity = 8;
    return c;
}

/** One execution counter per bin; threads bump their own bin's. */
struct BinCounters
{
    std::vector<std::atomic<std::uint64_t>> hits;

    explicit BinCounters(std::size_t bins) : hits(bins) {}

    static void
    bump(void *self, void *tag)
    {
        auto *c = static_cast<BinCounters *>(self);
        c->hits[reinterpret_cast<std::uintptr_t>(tag)].fetch_add(
            1, std::memory_order_relaxed);
    }
};

/**
 * Fork a deliberately skewed workload: bin b receives 1 + 7*(b % 4)
 * threads, so neighboring segments carry very different loads and the
 * occupancy-weighted partition (plus stealing) has real work to do.
 */
std::vector<std::uint64_t>
forkSkewed(LocalityScheduler &s, BinCounters &counters,
           std::size_t bins)
{
    std::vector<std::uint64_t> expected(bins);
    for (std::size_t b = 0; b < bins; ++b) {
        expected[b] = 1 + 7 * (b % 4);
        for (std::uint64_t i = 0; i < expected[b]; ++i)
            s.fork(&BinCounters::bump, &counters,
                   reinterpret_cast<void *>(b),
                   static_cast<Hint>(b) * (2u << 12), 0);
    }
    return expected;
}

TEST(WorkerPool, SkewedBinsExecuteExactlyOnceAtEveryWidth)
{
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
        LocalityScheduler s(cfg());
        constexpr std::size_t kBins = 16;
        BinCounters counters(kBins);
        const std::vector<std::uint64_t> expected =
            forkSkewed(s, counters, kBins);
        std::uint64_t total = 0;
        for (std::uint64_t e : expected)
            total += e;

        EXPECT_EQ(s.runParallel(workers), total)
            << "workers=" << workers;
        for (std::size_t b = 0; b < kBins; ++b)
            EXPECT_EQ(counters.hits[b].load(), expected[b])
                << "bin " << b << " workers=" << workers;
        EXPECT_EQ(s.pendingThreads(), 0u);
    }
}

TEST(WorkerPool, ShrinkingTourWidthLeavesNoStragglerOnTheDeadJob)
{
    // Regression: a tour narrower than its predecessor still wakes
    // every parked helper (notify_all). Helpers past the new width
    // must decide participation under the pool lock and re-park —
    // the original code read the *previous* tour's stack-allocated
    // job to decide, a use-after-free once that tour returned (TSan
    // flags it; a garbage width could even re-run the dead job).
    LocalityScheduler s(cfg());
    for (int round = 0; round < 20; ++round) {
        for (unsigned workers : {8u, 2u}) {
            constexpr std::size_t kBins = 8;
            BinCounters counters(kBins);
            const std::vector<std::uint64_t> expected =
                forkSkewed(s, counters, kBins);
            std::uint64_t total = 0;
            for (std::uint64_t e : expected)
                total += e;
            EXPECT_EQ(s.runParallel(workers), total)
                << "round " << round << " workers=" << workers;
            for (std::size_t b = 0; b < kBins; ++b)
                EXPECT_EQ(counters.hits[b].load(), expected[b])
                    << "round " << round << " workers=" << workers
                    << " bin " << b;
        }
    }
    // The wide tours spawned all helpers; the narrow ones added none.
    EXPECT_EQ(s.workerPoolStats().threadsSpawned, 7u);
    EXPECT_EQ(s.workerPoolStats().tours, 40u);
}

TEST(WorkerPool, RepeatedToursSpawnNoNewThreads)
{
    // The acceptance property of the persistent pool: OS threads are
    // created once, at the first parallel tour, and never again.
    LocalityScheduler s(cfg());
    constexpr unsigned kWorkers = 4;
    BinCounters counters(8);
    forkSkewed(s, counters, 8);

    s.runParallel(kWorkers, /*keep=*/true);
    const WorkerPoolStats first = s.workerPoolStats();
    EXPECT_EQ(first.threadsSpawned, kWorkers - 1);
    EXPECT_EQ(first.tours, 1u);

    for (int tour = 0; tour < 5; ++tour)
        s.runParallel(kWorkers, /*keep=*/true);

    const WorkerPoolStats after = s.workerPoolStats();
    EXPECT_EQ(after.threadsSpawned, kWorkers - 1);
    EXPECT_EQ(after.tours, 6u);
    // Every helper parked at least once between tours.
    EXPECT_GE(after.parks, kWorkers - 1);
    s.runParallel(kWorkers, /*keep=*/false);
}

TEST(WorkerPool, ColdSpawnPaysThreadsPerTour)
{
    // persistentPool=false restores the historic behavior: a fresh
    // set of helpers per tour, visible in the spawn counter.
    SchedulerConfig c = cfg();
    c.persistentPool = false;
    LocalityScheduler s(c);
    constexpr unsigned kWorkers = 4;
    BinCounters counters(8);

    for (int tour = 0; tour < 3; ++tour) {
        forkSkewed(s, counters, 8);
        s.runParallel(kWorkers);
    }
    EXPECT_EQ(s.workerPoolStats().threadsSpawned, 3 * (kWorkers - 1));
    EXPECT_EQ(s.workerPoolStats().tours, 3u);
}

TEST(WorkerPool, ReconfigureRetiresThePoolButKeepsItsStats)
{
    LocalityScheduler s(cfg());
    BinCounters counters(8);
    forkSkewed(s, counters, 8);
    s.runParallel(2);
    EXPECT_EQ(s.workerPoolStats().threadsSpawned, 1u);

    s.configure(cfg()); // retires the pool
    forkSkewed(s, counters, 8);
    s.runParallel(2);
    // One helper from the retired pool, one from its replacement.
    EXPECT_EQ(s.workerPoolStats().threadsSpawned, 2u);
    EXPECT_EQ(s.workerPoolStats().tours, 2u);
}

TEST(WorkerPool, IdleWorkersStealFromLoadedSegments)
{
    // Two bins land in worker 0's segment, two in the helper's. Bin 0
    // blocks worker 0 until every *other* bin has run — so bin 1,
    // unreachable by its own segment's owner, must be stolen by the
    // helper. Bounded wait: on a regression the gate opens after 10 s
    // and the assertions below report the missing steal.
    struct Gate
    {
        std::atomic<std::uint64_t> done{0};

        static void
        block(void *self, void *)
        {
            auto *g = static_cast<Gate *>(self);
            for (int i = 0; i < 10'000 && g->done.load() < 3; ++i)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            g->done.fetch_add(1);
        }
        static void
        pass(void *self, void *)
        {
            static_cast<Gate *>(self)->done.fetch_add(1);
        }
    };
    LocalityScheduler s(cfg());
    Gate gate;
    s.fork(&Gate::block, &gate, nullptr, 0, 0);
    for (std::uintptr_t b = 1; b < 4; ++b)
        s.fork(&Gate::pass, &gate, nullptr,
               static_cast<Hint>(b) * (2u << 12), 0);

    EXPECT_EQ(s.runParallel(2), 4u);
    EXPECT_EQ(gate.done.load(), 4u);
    EXPECT_GE(s.workerPoolStats().steals, 1u);
}

TEST(WorkerPool, StopTourDrainsStolenDequesCleanly)
{
    if (!fp::kCompiled)
        GTEST_SKIP() << "fail points compiled out";
    // Inject a fault mid-tour under StopTour: workers stop claiming,
    // unclaimed bins (including any sitting in stolen-from deques)
    // are recycled by the unwind path, and the scheduler — pool
    // included — is immediately reusable.
    SchedulerConfig c = cfg();
    c.onError = ErrorPolicy::StopTour;
    LocalityScheduler s(c);
    fp::disarmAll();
    ASSERT_TRUE(fp::arm("sched.bin.execute", "hit=2"));

    BinCounters counters(16);
    forkSkewed(s, counters, 16);
    EXPECT_THROW(s.runParallel(4), fp::Injected);
    EXPECT_EQ(s.lastFaultCount(), 1u);
    // Unwound clean: nothing pending, nothing claimed but unrun.
    EXPECT_EQ(s.pendingThreads(), 0u);

    fp::disarmAll();
    BinCounters fresh(16);
    const std::vector<std::uint64_t> expected =
        forkSkewed(s, fresh, 16);
    std::uint64_t total = 0;
    for (std::uint64_t e : expected)
        total += e;
    EXPECT_EQ(s.runParallel(4), total);
    for (std::size_t b = 0; b < 16; ++b)
        EXPECT_EQ(fresh.hits[b].load(), expected[b]) << "bin " << b;
    EXPECT_EQ(s.workerPoolStats().tours, 2u);
}

} // namespace
