/** @file Unit tests for the hint -> block-coordinate map. */

#include <gtest/gtest.h>

#include "threads/block_map.hh"

namespace
{

using namespace lsched::threads;

TEST(BlockMap, PowerOfTwoBlockUsesShift)
{
    BlockMap map(2, 1024);
    const Hint hints[] = {0, 1023};
    auto c = map.coordsFor(hints);
    EXPECT_EQ(c[0], 0u);
    EXPECT_EQ(c[1], 0u);
    const Hint hints2[] = {1024, 4096};
    c = map.coordsFor(hints2);
    EXPECT_EQ(c[0], 1u);
    EXPECT_EQ(c[1], 4u);
}

TEST(BlockMap, NonPowerOfTwoBlockDivides)
{
    BlockMap map(1, 1000);
    const Hint hints[] = {999};
    EXPECT_EQ(map.coordsFor(hints)[0], 0u);
    const Hint hints2[] = {1000};
    EXPECT_EQ(map.coordsFor(hints2)[0], 1u);
    const Hint hints3[] = {2999};
    EXPECT_EQ(map.coordsFor(hints3)[0], 2u);
}

TEST(BlockMap, MissingHintsActAsZero)
{
    BlockMap map(3, 1024);
    const Hint one[] = {5000};
    const auto c = map.coordsFor(std::span<const Hint>(one, 1));
    EXPECT_EQ(c[0], 4u);
    EXPECT_EQ(c[1], 0u);
    EXPECT_EQ(c[2], 0u);
}

TEST(BlockMap, ExtraHintsIgnored)
{
    BlockMap map(2, 1024);
    const Hint four[] = {1024, 2048, 4096, 8192};
    const auto c = map.coordsFor(four);
    EXPECT_EQ(c[0], 1u);
    EXPECT_EQ(c[1], 2u);
    EXPECT_EQ(c[2], 0u); // untouched dimension
}

TEST(BlockMap, SymmetricFoldingSortsCoords)
{
    BlockMap map(2, 1024, true);
    const Hint ab[] = {1024, 4096};
    const Hint ba[] = {4096, 1024};
    EXPECT_EQ(map.coordsFor(ab), map.coordsFor(ba));
}

TEST(BlockMap, AsymmetricKeepsOrder)
{
    BlockMap map(2, 1024, false);
    const Hint ab[] = {1024, 4096};
    const Hint ba[] = {4096, 1024};
    EXPECT_NE(map.coordsFor(ab), map.coordsFor(ba));
}

TEST(BlockMap, AdjacentAddressesWithinBlockShareCoords)
{
    // The core scheduling property: two hints within the same block
    // (whose dimensions sum to the cache size) give equal coords.
    const std::uint64_t cache = 1 << 20;
    BlockMap map(2, cache / 2);
    const Hint a[] = {0x100000, 0x300000};
    const Hint b[] = {0x100000 + cache / 2 - 1, 0x300000 + 1};
    EXPECT_EQ(map.coordsFor(a), map.coordsFor(b));
}

TEST(BlockMapDeathTest, ZeroDimsPanics)
{
    EXPECT_DEATH(BlockMap(0, 1024), "dims");
}

TEST(BlockMapDeathTest, TooManyDimsPanics)
{
    EXPECT_DEATH(BlockMap(kMaxDims + 1, 1024), "dims");
}

TEST(BlockMapDeathTest, ZeroBlockPanics)
{
    EXPECT_DEATH(BlockMap(2, 0), "block size");
}

} // namespace
