/** @file Unit tests for the synthetic instruction-fetch model. */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "trace/synth_ifetch.hh"

namespace
{

using lsched::cachesim::Hierarchy;
using lsched::cachesim::HierarchyConfig;
using lsched::trace::SynthIFetch;

HierarchyConfig
cfg()
{
    HierarchyConfig c;
    c.l1i = {"L1I", 1024, 32, 1};
    c.l1d = {"L1D", 1024, 32, 1};
    c.l2 = {"L2", 8192, 128, 4};
    return c;
}

TEST(SynthIFetch, AnalyticEnterTouchesEachCodeLineOnce)
{
    Hierarchy h(cfg());
    SynthIFetch f(&h, 0x400000, 512);
    f.enter();
    // 512 bytes / 32-byte L1I lines = 16 simulated fetches.
    EXPECT_EQ(h.l1iStats().accesses, 16u);
    EXPECT_EQ(h.l1iStats().misses, 16u); // all compulsory
    EXPECT_EQ(h.ifetches(), 16u);
}

TEST(SynthIFetch, AnalyticExecuteCountsWithoutSimulating)
{
    Hierarchy h(cfg());
    SynthIFetch f(&h, 0x400000, 512);
    f.execute(1000000);
    EXPECT_EQ(h.ifetches(), 1000000u);
    EXPECT_EQ(h.l1iStats().accesses, 0u);
}

TEST(SynthIFetch, FullModeSimulatesEveryFetch)
{
    Hierarchy h(cfg());
    SynthIFetch f(&h, 0x400000, 512, SynthIFetch::Mode::Full);
    f.execute(1000);
    EXPECT_EQ(h.ifetches(), 1000u);
    EXPECT_EQ(h.l1iStats().accesses, 1000u);
    // The 512-byte body has 16 lines; the rest hit.
    EXPECT_EQ(h.l1iStats().misses, 16u);
}

TEST(SynthIFetch, NullHierarchyIsNoop)
{
    SynthIFetch f(nullptr, 0x400000, 512);
    f.enter();
    f.execute(100);
    EXPECT_FALSE(f.active());
}

TEST(SynthIFetch, DisjointKernelsMissSeparately)
{
    Hierarchy h(cfg());
    SynthIFetch a(&h, 0x400000, 256);
    SynthIFetch b(&h, 0x401000, 256);
    a.enter();
    b.enter();
    EXPECT_EQ(h.l1iStats().misses, 16u); // 8 lines each
}

} // namespace
