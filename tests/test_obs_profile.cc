/**
 * @file
 * Tests for the continuous profiler (obs/profile.hh): the dwell-only
 * degradation path when hardware counters are unavailable, sample
 * attribution per bin / super-bin / worker, epoch accounting, the
 * profile.* config keys, and the th_profile_* C API.
 *
 * Everything here must stay clean under LSCHED_SANITIZE=thread — no
 * death tests.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/profile.hh"
#include "obs/snapshot.hh"
#include "threads/c_api.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::obs;

/** Reset the global profiler around every test in this suite. */
class ProfileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Profiler::global().setEnabled(false);
        Profiler::global().reset();
    }

    void
    TearDown() override
    {
        Profiler::global().setEnabled(false);
        Profiler::global().forcePmuUnavailable(false);
        Profiler::global().reset();
    }
};

/** Run a tiny serial workload with bins spread over several blocks. */
void
runSerialWorkload(std::size_t threads = 64)
{
    using namespace lsched::threads;
    SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.cacheBytes = 1 << 16;
    cfg.blockBytes = 1 << 12;
    LocalityScheduler sched(cfg);
    static std::atomic<std::uint64_t> sink{0};
    for (std::size_t i = 0; i < threads; ++i) {
        sched.fork(
            [](void *, void *) {
                sink.fetch_add(1, std::memory_order_relaxed);
            },
            nullptr, nullptr, static_cast<Hint>(i) * (1u << 12));
    }
    sched.run();
}

TEST_F(ProfileTest, DisabledByDefaultAndCompiledOutIsInert)
{
    EXPECT_FALSE(profileOn());
    if (!kTraceCompiled) {
        // The whole surface must be a well-behaved no-op.
        EXPECT_FALSE(Profiler::global().setEnabled(true));
        EXPECT_FALSE(profileOn());
        EXPECT_EQ(th_profile_enable(0), -1);
        EXPECT_EQ(th_profile_snapshot(), -1);
        th_profile_disable();
        runSerialWorkload();
        EXPECT_EQ(Profiler::global().samples(), 0u);
    }
}

TEST_F(ProfileTest, DwellOnlyFallbackWhenCountersUnavailable)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    // Regression: with perf_event_open "unavailable" the pipeline must
    // still attribute every window, just without LLC columns.
    Profiler &profiler = Profiler::global();
    profiler.forcePmuUnavailable(true);
    EXPECT_FALSE(profiler.pmuUsable());
    ASSERT_TRUE(profiler.setEnabled(true));
    runSerialWorkload();
    profiler.setEnabled(false);

    EXPECT_GT(profiler.samples(), 0u);
    EXPECT_EQ(profiler.pmuSampleCount(), 0u);
    EXPECT_EQ(profiler.dwellOnlySamples(), profiler.samples());

    const auto bins = profiler.binProfiles();
    ASSERT_FALSE(bins.empty());
    std::uint64_t threads = 0;
    for (const BinProfile &b : bins) {
        EXPECT_GT(b.executions, 0u);
        EXPECT_EQ(b.pmuSamples, 0u);
        EXPECT_EQ(b.llcRefs, 0u);
        threads += b.threads;
    }
    EXPECT_EQ(threads, 64u);
}

TEST_F(ProfileTest, RecordSampleAggregatesPerBinSuperBinAndWorker)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    Profiler &profiler = Profiler::global();
    ASSERT_TRUE(profiler.setEnabled(true));
    profiler.recordSample(/*binId=*/1, /*superBin=*/7, /*worker=*/0,
                          /*threads=*/2, /*dwellNs=*/100,
                          /*instructions=*/10, /*cycles=*/20,
                          /*llcRefs=*/50, /*llcMisses=*/25, true);
    profiler.recordSample(1, 7, /*worker=*/1, 1, 50, 5, 10, 50, 25,
                          true);
    profiler.recordSample(/*binId=*/2, kProfileNoSuperBin, 0, 1, 10, 1,
                          2, 0, 0, /*pmuValid=*/false);

    const auto bins = profiler.binProfiles();
    ASSERT_EQ(bins.size(), 2u);
    const BinProfile &one =
        bins[0].binId == 1 ? bins[0] : bins[1];
    EXPECT_EQ(one.binId, 1u);
    EXPECT_EQ(one.superBin, 7u);
    EXPECT_EQ(one.executions, 2u);
    EXPECT_EQ(one.threads, 3u);
    EXPECT_EQ(one.dwellNs, 150u);
    EXPECT_EQ(one.instructions, 15u);
    EXPECT_EQ(one.cycles, 30u);
    EXPECT_EQ(one.llcRefs, 100u);
    EXPECT_EQ(one.llcMisses, 50u);
    EXPECT_EQ(one.pmuSamples, 2u);
    EXPECT_DOUBLE_EQ(one.missRate(), 0.5);

    const auto supers = profiler.superBinProfiles();
    ASSERT_EQ(supers.size(), 2u);
    const BinProfile &seven =
        supers[0].binId == 7 ? supers[0] : supers[1];
    EXPECT_EQ(seven.binId, 7u);
    EXPECT_EQ(seven.llcMisses, 50u);
    EXPECT_EQ(seven.executions, 2u);

    const auto workers = profiler.workerProfiles();
    ASSERT_EQ(workers.size(), 2u);
    EXPECT_EQ(profiler.samples(), 3u);
    EXPECT_EQ(profiler.pmuSampleCount(), 2u);
    EXPECT_EQ(profiler.dwellOnlySamples(), 1u);
}

TEST_F(ProfileTest, EpochAdvancesPerRun)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    Profiler &profiler = Profiler::global();
    profiler.forcePmuUnavailable(true);
    ASSERT_TRUE(profiler.setEnabled(true));
    const std::uint32_t before = profiler.epoch();
    profiler.noteEpochBegin();
    EXPECT_EQ(profiler.epoch(), before + 1);
    runSerialWorkload(8); // run() notes an epoch itself
    EXPECT_EQ(profiler.epoch(), before + 2);
    const auto bins = profiler.binProfiles();
    ASSERT_FALSE(bins.empty());
    for (const BinProfile &b : bins)
        EXPECT_EQ(b.lastEpoch, before + 2);
}

TEST_F(ProfileTest, DropsBinsBeyondTableCapacityWithoutFailing)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    // Overflow the attribution table (default capacity 1024 bins,
    // never shrunk by reconfiguration) with far more distinct bins
    // than it can hold: the excess must count as dropped, not crash
    // or evict.
    Profiler &profiler = Profiler::global();
    ASSERT_TRUE(profiler.setEnabled(true));
    const std::uint64_t kBins = 4096;
    for (std::uint64_t bin = 0; bin < kBins; ++bin)
        profiler.recordSample(bin, kProfileNoSuperBin, 0, 1, 1, 0, 0,
                              0, 0, false);
    EXPECT_GT(profiler.droppedBins(), 0u);
    const std::size_t kept = profiler.binProfiles().size();
    EXPECT_LT(kept, kBins);
    EXPECT_EQ(kept + profiler.droppedBins(), kBins);
    EXPECT_EQ(profiler.samples(), kBins);
}

TEST_F(ProfileTest, ProfileConfigKeysRoundTrip)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    char buf[64];
    ASSERT_EQ(th_configure("profile.pmu", "false"), 0);
    ASSERT_GT(th_config_get("profile.pmu", buf, sizeof buf), 0);
    EXPECT_STREQ(buf, "0");
    ASSERT_EQ(th_configure("profile.ring", "8"), 0);
    ASSERT_GT(th_config_get("profile.ring", buf, sizeof buf), 0);
    EXPECT_STREQ(buf, "8");
    EXPECT_EQ(th_configure("profile.ring", "0"), -1); // rejected
    EXPECT_EQ(th_configure("profile.bogus", "1"), -1);

    ASSERT_EQ(th_configure("profile.enable", "true"), 0);
    EXPECT_TRUE(profileOn());
    ASSERT_GT(th_config_get("profile.enable", buf, sizeof buf), 0);
    EXPECT_STREQ(buf, "1");
    ASSERT_EQ(th_configure("profile.enable", "false"), 0);
    EXPECT_FALSE(profileOn());

    // Restore defaults touched above.
    ASSERT_EQ(th_configure("profile.pmu", "true"), 0);
    ASSERT_EQ(th_configure("profile.ring", "64"), 0);
}

TEST_F(ProfileTest, CApiEnableSnapshotReportRoundTrip)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    Profiler::global().forcePmuUnavailable(true);
    EXPECT_EQ(th_profile_enable(-1), -1); // bad interval
    ASSERT_EQ(th_profile_enable(0), 0);
    runSerialWorkload(16);

    const long long seq = th_profile_snapshot();
    EXPECT_GE(seq, 1);
    EXPECT_GT(th_profile_snapshot(), seq);

    const std::string path =
        ::testing::TempDir() + "lsched_profile_capi.jsonl";
    ASSERT_EQ(th_profile_report(path.c_str()), 0);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_NE(os.str().find("\"bins\""), std::string::npos);
    std::remove(path.c_str());

    EXPECT_EQ(th_profile_report(nullptr), -1);
    th_profile_disable();
    EXPECT_FALSE(profileOn());

    // Fortran shims: same surface, numeric-only.
    int interval = 0;
    int status = -2;
    th_profile_enable_(&interval, &status);
    EXPECT_EQ(status, 0);
    long long fseq = 0;
    th_profile_snapshot_(&fseq);
    EXPECT_GE(fseq, 1);
    th_profile_disable_();
    EXPECT_FALSE(profileOn());
}

} // namespace
