/** @file Scheduler + tour-policy interplay tests. */

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

struct Log
{
    std::vector<std::uintptr_t> order;

    static void
    record(void *self, void *tag)
    {
        static_cast<Log *>(self)->order.push_back(
            reinterpret_cast<std::uintptr_t>(tag));
    }
};

SchedulerConfig
config(TourPolicy tour)
{
    SchedulerConfig c;
    c.dims = 2;
    c.blockBytes = 1 << 16;
    c.tour = tour;
    return c;
}

TEST(SchedulerTours, SnakeRunsBinsInSortedOrder)
{
    LocalityScheduler s(config(TourPolicy::SortedSnake));
    Log log;
    // Create bins out of order along one axis: 3, 0, 2, 1.
    for (std::uintptr_t b : {3u, 0u, 2u, 1u}) {
        s.fork(&Log::record, &log, reinterpret_cast<void *>(b),
               static_cast<Hint>(b) << 16, 0);
    }
    s.run();
    EXPECT_EQ(log.order,
              (std::vector<std::uintptr_t>{0, 1, 2, 3}));
}

TEST(SchedulerTours, SnakeAlternatesSecondDimension)
{
    LocalityScheduler s(config(TourPolicy::SortedSnake));
    Log log;
    // Four bins forming a 2x2 grid, forked in scrambled order.
    auto fork_at = [&](std::uintptr_t tag, Hint x, Hint y) {
        s.fork(&Log::record, &log, reinterpret_cast<void *>(tag),
               x << 16, y << 16);
    };
    fork_at(11, 1, 1);
    fork_at(0, 0, 0);
    fork_at(10, 1, 0);
    fork_at(1, 0, 1);
    s.run();
    // Row 0 ascending (0,0) (0,1); row 1 descending (1,1) (1,0).
    EXPECT_EQ(log.order,
              (std::vector<std::uintptr_t>{0, 1, 11, 10}));
}

TEST(SchedulerTours, EveryPolicyRunsEveryThreadOnce)
{
    for (auto policy :
         {TourPolicy::CreationOrder, TourPolicy::SortedSnake,
          TourPolicy::NearestNeighbor, TourPolicy::Hilbert}) {
        LocalityScheduler s(config(policy));
        Log log;
        for (std::uintptr_t i = 0; i < 200; ++i) {
            s.fork(&Log::record, &log, reinterpret_cast<void *>(i),
                   static_cast<Hint>((i * 7) % 13) << 16,
                   static_cast<Hint>((i * 3) % 11) << 16);
        }
        EXPECT_EQ(s.run(), 200u) << tourPolicyName(policy);
        std::vector<bool> seen(200, false);
        for (auto tag : log.order) {
            ASSERT_LT(tag, 200u);
            EXPECT_FALSE(seen[tag]) << tourPolicyName(policy);
            seen[tag] = true;
        }
    }
}

TEST(SchedulerTours, KeepRunIsStableUnderNonCreationTours)
{
    LocalityScheduler s(config(TourPolicy::NearestNeighbor));
    Log log;
    for (std::uintptr_t i = 0; i < 50; ++i) {
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i),
               static_cast<Hint>((i * 5) % 9) << 16,
               static_cast<Hint>((i * 2) % 7) << 16);
    }
    s.run(true);
    s.run(true);
    ASSERT_EQ(log.order.size(), 100u);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(log.order[i], log.order[i + 50]);
    s.clear();
}

TEST(SchedulerTours, WithinBinOrderUnaffectedByTour)
{
    LocalityScheduler s(config(TourPolicy::Hilbert));
    Log log;
    // One bin, many threads: fork order must survive any tour.
    for (std::uintptr_t i = 0; i < 30; ++i)
        s.fork(&Log::record, &log, reinterpret_cast<void *>(i), 64, 64);
    s.run();
    for (std::uintptr_t i = 0; i < 30; ++i)
        EXPECT_EQ(log.order[i], i);
}

TEST(SchedulerToursMisuse, NestedForkRequiresCreationOrder)
{
    LocalityScheduler s(config(TourPolicy::SortedSnake));
    struct Ctx
    {
        LocalityScheduler *sched;
    } ctx{&s};
    auto forker = [](void *c, void *) {
        auto *ctx = static_cast<Ctx *>(c);
        auto noop = [](void *, void *) {};
        ctx->sched->fork(noop, nullptr, nullptr, 0, 0);
    };
    s.fork(forker, &ctx, nullptr, 0, 0);
    EXPECT_THROW(s.run(false), lsched::UsageError);
    // The run-guard abandoned the tour: the scheduler is reusable.
    EXPECT_EQ(s.stats().pendingThreads, 0u);
    Log log;
    s.fork(&Log::record, &log, reinterpret_cast<void *>(7), 0, 0);
    s.run();
    ASSERT_EQ(log.order.size(), 1u);
    EXPECT_EQ(log.order[0], 7u);
}

TEST(SchedulerToursMisuse, NestedForkWithKeepThrows)
{
    SchedulerConfig cfg = config(TourPolicy::CreationOrder);
    LocalityScheduler s(cfg);
    struct Ctx
    {
        LocalityScheduler *sched;
    } ctx{&s};
    auto forker = [](void *c, void *) {
        auto *ctx = static_cast<Ctx *>(c);
        auto noop = [](void *, void *) {};
        ctx->sched->fork(noop, nullptr, nullptr, 0, 0);
    };
    s.fork(forker, &ctx, nullptr, 0, 0);
    EXPECT_THROW(s.run(true), lsched::UsageError);
}

} // namespace
