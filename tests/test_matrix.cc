/** @file Unit tests for the column-major matrix container. */

#include <gtest/gtest.h>

#include <cstdint>

#include "workloads/matrix.hh"

namespace
{

using lsched::workloads::Matrix;

TEST(Matrix, ZeroInitialized)
{
    Matrix m(4, 3);
    for (std::size_t j = 0; j < 3; ++j)
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, ColumnMajorLayout)
{
    Matrix m(4, 3);
    m(1, 2) = 7.0;
    EXPECT_EQ(m.data()[2 * 4 + 1], 7.0);
    EXPECT_EQ(m.col(2)[1], 7.0);
}

TEST(Matrix, ColumnsAreContiguous)
{
    Matrix m(8, 2);
    EXPECT_EQ(m.col(1) - m.col(0), 8);
}

TEST(Matrix, PageAlignedStorage)
{
    Matrix m(100, 100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 4096, 0u);
}

TEST(Matrix, FillSetsEverything)
{
    Matrix m(5, 5);
    m.fill(2.5);
    for (std::size_t j = 0; j < 5; ++j)
        for (std::size_t i = 0; i < 5; ++i)
            EXPECT_EQ(m(i, j), 2.5);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a(3, 3), b(3, 3);
    a.fill(1.0);
    b.fill(1.0);
    EXPECT_EQ(a.maxAbsDiff(b), 0.0);
    b(2, 1) = 1.5;
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.5);
}

TEST(Matrix, CopyIsDeep)
{
    Matrix a(2, 2);
    a(0, 0) = 3.0;
    Matrix b(a);
    b(0, 0) = 9.0;
    EXPECT_EQ(a(0, 0), 3.0);
    EXPECT_EQ(b(0, 0), 9.0);
}

TEST(Matrix, MoveTransfersStorage)
{
    Matrix a(2, 2);
    a(1, 1) = 4.0;
    const double *ptr = a.data();
    Matrix b(std::move(a));
    EXPECT_EQ(b.data(), ptr);
    EXPECT_EQ(b(1, 1), 4.0);
}

TEST(Matrix, NonSquareShapes)
{
    Matrix m(2, 7);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 7u);
    m(1, 6) = 1.0;
    EXPECT_EQ(m.col(6)[1], 1.0);
}

} // namespace
