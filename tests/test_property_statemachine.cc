/**
 * @file State-machine fuzz of the scheduler: random interleavings of
 * fork / run / run-keep / clear, checked against an executable
 * reference model of the paper's algorithm (bins keyed by block
 * coordinates in first-fork order; threads in fork order; keep
 * preserves everything; clear drops everything).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "support/prng.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::threads;

/** The reference model: what the paper says should happen. */
class ModelScheduler
{
  public:
    explicit ModelScheduler(const BlockMap &map) : map_(map) {}

    void
    fork(std::uint64_t tag, std::span<const Hint> hints)
    {
        const BlockCoords coords = map_.coordsFor(hints);
        auto it = binOf_.find(coords);
        if (it == binOf_.end()) {
            it = binOf_.emplace(coords, bins_.size()).first;
            bins_.emplace_back();
        }
        bins_[it->second].push_back(tag);
        ++pending_;
    }

    std::vector<std::uint64_t>
    run(bool keep)
    {
        std::vector<std::uint64_t> order;
        for (const auto &bin : bins_)
            order.insert(order.end(), bin.begin(), bin.end());
        if (!keep)
            clear();
        return order;
    }

    void
    clear()
    {
        bins_.clear();
        binOf_.clear();
        pending_ = 0;
    }

    std::uint64_t pending() const { return pending_; }

  private:
    const BlockMap &map_;
    std::vector<std::vector<std::uint64_t>> bins_;
    std::map<BlockCoords, std::size_t> binOf_;
    std::uint64_t pending_ = 0;
};

struct FuzzCase
{
    std::uint64_t seed;
    unsigned dims;
    std::uint64_t blockBytes;
    std::uint32_t groupCapacity;
};

class SchedulerFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

std::vector<std::uint64_t> g_executed;

void
record(void *, void *tag)
{
    g_executed.push_back(reinterpret_cast<std::uintptr_t>(tag));
}

TEST_P(SchedulerFuzz, AgreesWithReferenceModel)
{
    const FuzzCase fc = GetParam();
    SchedulerConfig cfg;
    cfg.dims = fc.dims;
    cfg.blockBytes = fc.blockBytes;
    cfg.groupCapacity = fc.groupCapacity;
    cfg.hashBuckets = 32;
    LocalityScheduler sched(cfg);
    BlockMap map(fc.dims, fc.blockBytes);
    ModelScheduler model(map);

    lsched::Prng prng(fc.seed);
    std::uint64_t next_tag = 0;

    for (int step = 0; step < 4000; ++step) {
        const std::uint64_t op = prng.nextBelow(100);
        if (op < 85) {
            // fork
            Hint hints[kMaxDims] = {};
            for (unsigned d = 0; d < fc.dims; ++d)
                hints[d] = prng.nextBelow(fc.blockBytes * 6);
            std::span<const Hint> span(hints, fc.dims);
            model.fork(next_tag, span);
            sched.fork(&record, nullptr,
                       reinterpret_cast<void *>(next_tag), span);
            ++next_tag;
        } else if (op < 93) {
            // run (keep with probability 1/3)
            const bool keep = prng.nextBelow(3) == 0;
            const auto expected = model.run(keep);
            g_executed.clear();
            const std::uint64_t n = sched.run(keep);
            ASSERT_EQ(n, expected.size()) << "step " << step;
            ASSERT_EQ(g_executed, expected) << "step " << step;
        } else if (op < 97) {
            // clear
            model.clear();
            sched.clear();
        } else {
            // cross-check pending counters
            ASSERT_EQ(sched.pendingThreads(), model.pending())
                << "step " << step;
        }
    }
    // Drain at the end.
    const auto expected = model.run(false);
    g_executed.clear();
    ASSERT_EQ(sched.run(false), expected.size());
    ASSERT_EQ(g_executed, expected);
    ASSERT_EQ(sched.pendingThreads(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SchedulerFuzz,
    ::testing::Values(FuzzCase{1, 1, 4096, 4},
                      FuzzCase{2, 2, 4096, 64},
                      FuzzCase{3, 2, 1000, 1},
                      FuzzCase{4, 3, 65536, 8},
                      FuzzCase{5, 3, 4096, 3},
                      FuzzCase{6, 4, 8192, 16},
                      FuzzCase{7, 8, 4096, 64},
                      FuzzCase{8, 2, 512, 2}));

} // namespace
