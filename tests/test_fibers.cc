/** @file Unit tests for the fiber primitive. */

#include <gtest/gtest.h>

#include <vector>

#include "fibers/fiber.hh"

namespace
{

using namespace lsched::fibers;

constexpr std::size_t kStack = 64 * 1024;

TEST(Fiber, RunsToCompletion)
{
    int ran = 0;
    Fiber f(kStack);
    f.bind([](void *arg) { ++*static_cast<int *>(arg); }, &ran);
    EXPECT_EQ(f.state(), FiberState::Ready);
    f.resume();
    EXPECT_EQ(f.state(), FiberState::Finished);
    EXPECT_EQ(ran, 1);
}

TEST(Fiber, SuspendAndResumeRoundTrip)
{
    struct State
    {
        std::vector<int> events;
    } state;

    Fiber f(kStack);
    f.bind(
        [](void *arg) {
            auto *s = static_cast<State *>(arg);
            s->events.push_back(1);
            Fiber::current()->suspend(FiberState::Ready);
            s->events.push_back(3);
        },
        &state);
    f.resume();
    state.events.push_back(2);
    EXPECT_EQ(f.state(), FiberState::Ready);
    f.resume();
    EXPECT_EQ(f.state(), FiberState::Finished);
    EXPECT_EQ(state.events, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, CurrentIsNullOutsideFibers)
{
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, CurrentPointsToRunningFiber)
{
    struct Probe
    {
        Fiber *fiber = nullptr;
        Fiber *seen = nullptr;
    } probe;
    Fiber f(kStack);
    probe.fiber = &f;
    f.bind(
        [](void *arg) {
            static_cast<Probe *>(arg)->seen = Fiber::current();
        },
        &probe);
    f.resume();
    EXPECT_EQ(probe.seen, probe.fiber);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, StackStateSurvivesSuspension)
{
    // Locals on the fiber stack must be intact across suspend/resume.
    struct Out
    {
        long sum = 0;
    } out;
    Fiber f(kStack);
    f.bind(
        [](void *arg) {
            long locals[64];
            for (int i = 0; i < 64; ++i)
                locals[i] = i * i;
            Fiber::current()->suspend(FiberState::Ready);
            long sum = 0;
            for (int i = 0; i < 64; ++i)
                sum += locals[i];
            static_cast<Out *>(arg)->sum = sum;
        },
        &out);
    f.resume();
    f.resume();
    long expect = 0;
    for (int i = 0; i < 64; ++i)
        expect += static_cast<long>(i) * i;
    EXPECT_EQ(out.sum, expect);
}

TEST(Fiber, RebindReusesStack)
{
    int count = 0;
    Fiber f(kStack);
    for (int round = 0; round < 5; ++round) {
        f.bind([](void *arg) { ++*static_cast<int *>(arg); }, &count);
        f.resume();
        EXPECT_EQ(f.state(), FiberState::Finished);
    }
    EXPECT_EQ(count, 5);
}

TEST(FiberPool, RecyclesFinishedFibers)
{
    FiberPool pool(kStack);
    int dummy = 0;
    auto body = [](void *arg) { ++*static_cast<int *>(arg); };
    Fiber *a = pool.acquire(body, &dummy);
    a->resume();
    pool.release(a);
    Fiber *b = pool.acquire(body, &dummy);
    EXPECT_EQ(a, b);
    b->resume();
    pool.release(b);
    EXPECT_EQ(pool.createdCount(), 1u);
    EXPECT_EQ(dummy, 2);
}

TEST(FiberPool, AllocatesWhenEmpty)
{
    FiberPool pool(kStack);
    int dummy = 0;
    auto body = [](void *arg) { ++*static_cast<int *>(arg); };
    Fiber *a = pool.acquire(body, &dummy);
    Fiber *b = pool.acquire(body, &dummy);
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.createdCount(), 2u);
    a->resume();
    b->resume();
}

} // namespace
