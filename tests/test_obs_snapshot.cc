/**
 * @file
 * Tests for the snapshot engine (obs/snapshot.hh): delta/rate
 * computation between snapshots, ring retention, percentile
 * estimation from power-of-two histogram buckets, the JSONL and
 * OpenMetrics renderings, report round-trips, and the background
 * flusher running concurrently with a pooled scheduler.
 *
 * Everything here must stay clean under LSCHED_SANITIZE=thread — no
 * death tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/profile.hh"
#include "obs/registry.hh"
#include "obs/snapshot.hh"
#include "threads/scheduler.hh"

namespace
{

using namespace lsched::obs;

/** Find one named row in a snapshot; aborts the test when missing. */
const Registry::Row &
rowNamed(const ProfileSnapshot &snap, const std::string &name)
{
    for (const Registry::Row &r : snap.rows)
        if (r.name == name)
            return r;
    ADD_FAILURE() << "no row named " << name;
    static Registry::Row missing;
    return missing;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(Snapshot, CountersAreMonotoneAndDeltasChain)
{
    Registry reg;
    SnapshotEngine engine(reg);
    reg.counter("c").add(5);
    const ProfileSnapshot first = engine.take();
    reg.counter("c").add(7);
    const ProfileSnapshot second = engine.take();

    EXPECT_EQ(rowNamed(first, "c").value, 5u);
    EXPECT_EQ(rowNamed(second, "c").value, 12u);
    EXPECT_GE(rowNamed(second, "c").value, rowNamed(first, "c").value);
    EXPECT_LT(first.seq, second.seq);
    EXPECT_LE(first.ns, second.ns);

    const std::string line = SnapshotEngine::toJsonl(second, &first);
    EXPECT_NE(line.find("\"value\":12"), std::string::npos) << line;
    EXPECT_NE(line.find("\"delta\":7"), std::string::npos) << line;
    EXPECT_EQ(line.back(), '\n');

    // Without a predecessor the delta equals the value.
    const std::string fresh = SnapshotEngine::toJsonl(first, nullptr);
    EXPECT_NE(fresh.find("\"delta\":5"), std::string::npos) << fresh;
}

TEST(Snapshot, RingKeepsTheLastNOnly)
{
    Registry reg;
    SnapshotEngine engine(reg);
    engine.setRingDepth(3);
    for (int i = 0; i < 5; ++i)
        engine.take();
    EXPECT_EQ(engine.ringSize(), 3u);
    const auto ring = engine.ring();
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front().seq, 3u);
    EXPECT_EQ(ring.back().seq, 5u);

    engine.setRingDepth(1); // shrinking trims immediately
    EXPECT_EQ(engine.ringSize(), 1u);
    EXPECT_EQ(engine.ring().front().seq, 5u);

    engine.clear();
    EXPECT_EQ(engine.ringSize(), 0u);
}

TEST(Snapshot, PercentileOfEmptyHistogramIsZero)
{
    Registry reg;
    reg.histogram("h"); // registered, never recorded
    SnapshotEngine engine(reg);
    const ProfileSnapshot snap = engine.take();
    const Registry::Row &h = rowNamed(snap, "h");
    EXPECT_EQ(histogramPercentile(h, 0.5), 0.0);
    EXPECT_EQ(histogramPercentile(h, 0.99), 0.0);
}

TEST(Snapshot, PercentileOfSingleSampleIsThatSample)
{
    Registry reg;
    reg.histogram("h").record(37);
    SnapshotEngine engine(reg);
    const ProfileSnapshot snap = engine.take();
    const Registry::Row &h = rowNamed(snap, "h");
    EXPECT_EQ(histogramPercentile(h, 0.5), 37.0);
    EXPECT_EQ(histogramPercentile(h, 0.9), 37.0);
    EXPECT_EQ(histogramPercentile(h, 0.99), 37.0);
}

TEST(Snapshot, PercentilesAreOrderedAndClampedToMinMax)
{
    Registry reg;
    Histogram &h = reg.histogram("h");
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    SnapshotEngine engine(reg);
    const ProfileSnapshot snap = engine.take();
    const Registry::Row &row = rowNamed(snap, "h");
    const double p50 = histogramPercentile(row, 0.5);
    const double p90 = histogramPercentile(row, 0.9);
    const double p99 = histogramPercentile(row, 0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 1000.0);
    // Power-of-two buckets are coarse, but the median of 1..1000 must
    // land in the right bucket neighborhood.
    EXPECT_GT(p50, 250.0);
    EXPECT_LT(p50, 1000.0);
}

TEST(Snapshot, OpenMetricsExpositionIsWellFormed)
{
    Registry reg;
    reg.counter("runs.total").add(3);
    reg.gauge("pool.size").set(4);
    reg.histogram("dwell").record(10);
    SnapshotEngine engine(reg);
    const std::string om =
        SnapshotEngine::toOpenMetrics(engine.take());
    EXPECT_NE(om.find("# TYPE lsched_runs_total counter"),
              std::string::npos)
        << om;
    EXPECT_NE(om.find("lsched_runs_total_total 3"), std::string::npos);
    EXPECT_NE(om.find("lsched_pool_size 4"), std::string::npos);
    EXPECT_NE(om.find("quantile=\"0.5\""), std::string::npos);
    EXPECT_NE(om.find("_count 1"), std::string::npos);
    EXPECT_EQ(om.rfind("# EOF\n"), om.size() - 6);
}

TEST(Snapshot, WriteReportRoundTripsJsonlAndOpenMetrics)
{
    Registry reg;
    reg.counter("c").add(9);
    SnapshotEngine engine(reg);
    engine.take();

    const std::string jsonl =
        ::testing::TempDir() + "lsched_snapshot_test.jsonl";
    const std::string om =
        ::testing::TempDir() + "lsched_snapshot_test.om";
    ASSERT_TRUE(engine.writeReport(jsonl));
    ASSERT_TRUE(engine.writeReport(om));

    const std::string jl = slurp(jsonl);
    EXPECT_NE(jl.find("\"seq\":1"), std::string::npos) << jl;
    EXPECT_NE(jl.find("\"counters\""), std::string::npos);
    // The ring gained a snapshot per writeReport call; every retained
    // entry is one line.
    EXPECT_GE(engine.ringSize(), 3u);

    const std::string omText = slurp(om);
    EXPECT_NE(omText.find("# TYPE"), std::string::npos);
    EXPECT_NE(omText.rfind("# EOF\n"), std::string::npos);
    std::remove(jsonl.c_str());
    std::remove(om.c_str());
}

TEST(Snapshot, StartStopFlusherLifecycle)
{
    Registry reg;
    SnapshotEngine engine(reg);
    EXPECT_FALSE(engine.running());
    EXPECT_FALSE(engine.start(0)); // 0 = manual snapshots only
    ASSERT_TRUE(engine.start(1));
    EXPECT_TRUE(engine.running());
    EXPECT_FALSE(engine.start(1)); // already running
    engine.stop();
    EXPECT_FALSE(engine.running());
    engine.stop(); // idempotent
    EXPECT_GE(engine.ringSize(), 0u);
}

/**
 * The TSan target: the background flusher snapshots the profiler's
 * attribution store while a pooled run is writing it. PMU access is
 * forced off so the test exercises the pure dwell path everywhere.
 */
TEST(Snapshot, FlusherIsCleanUnderConcurrentExecuteBin)
{
    if (!kTraceCompiled)
        GTEST_SKIP() << "instrumentation compiled out";

    Profiler &profiler = Profiler::global();
    profiler.forcePmuUnavailable(true);
    profiler.reset();
    profiler.setEnabled(true);

    SnapshotEngine engine; // private engine over the global registry
    ASSERT_TRUE(engine.start(1));

    using namespace lsched::threads;
    SchedulerConfig cfg;
    cfg.dims = 1;
    cfg.cacheBytes = 1 << 16;
    cfg.blockBytes = 1 << 12;
    for (int tour = 0; tour < 4; ++tour) {
        LocalityScheduler sched(cfg);
        static std::atomic<std::uint64_t> sink{0};
        for (int i = 0; i < 256; ++i) {
            sched.fork(
                [](void *, void *) {
                    sink.fetch_add(1, std::memory_order_relaxed);
                },
                nullptr, nullptr,
                static_cast<Hint>(i) * (1u << 12));
        }
        sched.runParallel(4);
        engine.take(); // manual snapshots interleave with the flusher
    }

    engine.stop();
    profiler.setEnabled(false);
    profiler.forcePmuUnavailable(false);

    EXPECT_GT(profiler.samples(), 0u);
    EXPECT_EQ(profiler.pmuSampleCount(), 0u);
    const auto ring = engine.ring();
    ASSERT_FALSE(ring.empty());
    // Rendering the concurrent captures must be safe and non-empty.
    const std::string line =
        SnapshotEngine::toJsonl(ring.back(), nullptr);
    EXPECT_NE(line.find("\"bins\""), std::string::npos);
    profiler.reset();
}

} // namespace
