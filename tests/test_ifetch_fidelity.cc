/**
 * @file Fidelity check for the synthetic instruction-fetch model
 * (DESIGN.md substitution 3): the analytic mode must agree with full
 * per-instruction fetch simulation on everything that matters — data
 * behaviour identical, instruction counts equal up to the code-line
 * touches, L2 differing only via the handful of instruction lines.
 * All buffers are shared between the compared runs so the comparison
 * is free of allocator-placement noise.
 */

#include <gtest/gtest.h>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "workloads/matmul.hh"
#include "workloads/sor.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;
using trace::SynthIFetch;

struct Outcome
{
    std::uint64_t ifetches;
    std::uint64_t l1iMisses;
    std::uint64_t l1dMisses;
    std::uint64_t l2Misses;
    std::uint64_t dataRefs;
};

template <typename Kernel>
Outcome
run(SynthIFetch::Mode mode, Kernel &&kernel)
{
    cachesim::Hierarchy h(
        machine::scaled(machine::powerIndigo2R8000(), 64).caches);
    SimModel model(h, mode);
    kernel(model);
    return {h.ifetches(), h.l1iStats().misses, h.l1dStats().misses,
            h.l2Stats().misses, h.dataRefs()};
}

std::uint64_t
absDelta(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : b - a;
}

TEST(IFetchFidelity, MatmulAnalyticMatchesFullMode)
{
    const std::size_t n = 48;
    Matrix a(n, n), b(n, n), c(n, n);
    randomize(a, 1);
    randomize(b, 2);
    auto kernel = [&](SimModel &m) {
        matmulInterchanged(a, b, c, m);
    };
    const Outcome analytic = run(SynthIFetch::Mode::Analytic, kernel);
    const Outcome full = run(SynthIFetch::Mode::Full, kernel);

    // The data side agrees exactly (same buffers, same stream)...
    EXPECT_EQ(analytic.dataRefs, full.dataRefs);
    EXPECT_EQ(analytic.l1dMisses, full.l1dMisses);
    // ...instruction counts agree up to the per-kernel code-line
    // touches the analytic mode adds (<= 16 lines per kernel entry).
    EXPECT_LE(absDelta(analytic.ifetches, full.ifetches), 64u);
    // Full mode's loop body is L1I-resident, so L1I misses stay
    // negligible relative to the fetch count...
    EXPECT_LT(full.l1iMisses, full.ifetches / 1000 + 64);
    // ...and the L2 impact is bounded by the instruction lines'
    // interaction with the (small, scaled) L2: a few percent.
    EXPECT_LE(absDelta(analytic.l2Misses, full.l2Misses),
              analytic.l2Misses / 10 + 64);
}

TEST(IFetchFidelity, SorAnalyticMatchesFullMode)
{
    const std::size_t n = 64;
    const Matrix init = sorInit(n, 5);
    Matrix work(n, n);
    auto kernel = [&](SimModel &m) {
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t i = 0; i < n; ++i)
                work(i, j) = init(i, j);
        sorUntiled(work, 3, m);
    };
    const Outcome analytic = run(SynthIFetch::Mode::Analytic, kernel);
    const Outcome full = run(SynthIFetch::Mode::Full, kernel);
    EXPECT_EQ(analytic.dataRefs, full.dataRefs);
    EXPECT_EQ(analytic.l1dMisses, full.l1dMisses);
    EXPECT_LE(absDelta(analytic.ifetches, full.ifetches), 32u);
    EXPECT_LE(absDelta(analytic.l2Misses, full.l2Misses),
              analytic.l2Misses / 10 + 16);
}

TEST(IFetchFidelity, FullModeCostsMoreSimulatedAccesses)
{
    // Documenting *why* analytic is the default: full mode pushes an
    // L1I access per instruction.
    const std::size_t n = 32;
    Matrix a(n, n), b(n, n), c(n, n);
    randomize(a, 1);
    randomize(b, 2);
    auto kernel = [&](SimModel &m) { matmulInterchanged(a, b, c, m); };
    cachesim::Hierarchy ha(
        machine::scaled(machine::powerIndigo2R8000(), 64).caches);
    {
        SimModel m(ha, SynthIFetch::Mode::Analytic);
        kernel(m);
    }
    cachesim::Hierarchy hf(
        machine::scaled(machine::powerIndigo2R8000(), 64).caches);
    {
        SimModel m(hf, SynthIFetch::Mode::Full);
        kernel(m);
    }
    EXPECT_GT(hf.l1iStats().accesses,
              100 * std::max<std::uint64_t>(1, ha.l1iStats().accesses));
}

} // namespace
