/** @file Unit tests for support/prng.hh. */

#include <gtest/gtest.h>

#include "support/prng.hh"

namespace
{

using lsched::Prng;

TEST(Prng, DeterministicForSameSeed)
{
    Prng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Prng, NextBelowInRange)
{
    Prng prng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(prng.nextBelow(17), 17u);
}

TEST(Prng, NextBelowCoversRange)
{
    Prng prng(7);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[prng.nextBelow(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Prng, NextDoubleInUnitInterval)
{
    Prng prng(99);
    for (int i = 0; i < 10000; ++i) {
        const double d = prng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Prng, NextDoubleRangeRespected)
{
    Prng prng(99);
    for (int i = 0; i < 1000; ++i) {
        const double d = prng.nextDouble(-2.5, 3.5);
        EXPECT_GE(d, -2.5);
        EXPECT_LT(d, 3.5);
    }
}

TEST(Prng, MeanIsCentered)
{
    Prng prng(4242);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += prng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

} // namespace
