/** @file Unit tests for the experiment harness and report rendering. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "workloads/matmul.hh"

namespace
{

using namespace lsched;
using namespace lsched::harness;

TEST(Experiment, SimulateOnProducesConsistentSnapshot)
{
    const auto machine = machine::scaled(
        machine::powerIndigo2R8000(), 64);
    const SimOutcome o = simulateOn(machine, [](workloads::SimModel &m) {
        workloads::Matrix a(16, 16), b(16, 16), c(16, 16);
        workloads::randomize(a, 1);
        workloads::randomize(b, 2);
        workloads::matmulInterchanged(a, b, c, m);
    });
    EXPECT_GT(o.ifetches, 0u);
    EXPECT_GT(o.dataRefs, 0u);
    EXPECT_GT(o.l1.accesses, 0u);
    EXPECT_LE(o.l2.accesses, o.l1.misses);
    EXPECT_EQ(o.l2.compulsoryMisses + o.l2.capacityMisses +
                  o.l2.conflictMisses,
              o.l2.misses);
    EXPECT_GE(o.l1RatePercent, 0.0);
    EXPECT_LE(o.l1RatePercent, 100.0);
}

TEST(Experiment, EstimatedSecondsScalesWithWork)
{
    SimOutcome small, big;
    small.ifetches = 1000000;
    big.ifetches = 2000000;
    const auto m = machine::powerIndigo2R8000();
    EXPECT_NEAR(big.estimatedSeconds(m),
                2 * small.estimatedSeconds(m), 1e-12);
}

TEST(Report, CacheTableHasPaperRows)
{
    SimOutcome o;
    o.ifetches = 5388645000;
    o.dataRefs = 3222274000;
    o.l1.accesses = 8610919000;
    o.l1.misses = 408756000;
    o.l2.accesses = 408756000;
    o.l2.misses = 68225000;
    o.l2.compulsoryMisses = 199000;
    o.l2.capacityMisses = 68025000;
    o.l2.conflictMisses = 1000;
    o.l1RatePercent = 4.8;
    o.l2RatePercent = 16.7;
    const TextTable t = cacheTable("Table 3", {{"Untiled", o}});
    const std::string text = t.toText();
    EXPECT_NE(text.find("I fetches"), std::string::npos);
    EXPECT_NE(text.find("D references"), std::string::npos);
    EXPECT_NE(text.find("L2 compulsory"), std::string::npos);
    EXPECT_NE(text.find("L2 capacity"), std::string::npos);
    EXPECT_NE(text.find("L2 conflict"), std::string::npos);
    EXPECT_NE(text.find("5,388,645"), std::string::npos);
    EXPECT_NE(text.find("68,225"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 9u);
}

TEST(Report, PerfTableListsMachinesAndHost)
{
    PerfRow row;
    row.name = "Threaded";
    row.estimatedSeconds = {20.32, 16.85};
    row.hostSeconds = 0.42;
    const TextTable t =
        perfTable("Table 2", {"R8000", "R10000"}, {row});
    const std::string text = t.toText();
    EXPECT_NE(text.find("R8000 est. s"), std::string::npos);
    EXPECT_NE(text.find("R10000 est. s"), std::string::npos);
    EXPECT_NE(text.find("host CPU s"), std::string::npos);
    EXPECT_NE(text.find("20.32"), std::string::npos);
    EXPECT_NE(text.find("0.42"), std::string::npos);
}

TEST(Report, PerfTableOmitsHostColumnWhenAbsent)
{
    PerfRow row;
    row.name = "Untiled";
    row.estimatedSeconds = {102.98};
    const TextTable t = perfTable("Table", {"R8000"}, {row});
    EXPECT_EQ(t.toText().find("host"), std::string::npos);
}

} // namespace
