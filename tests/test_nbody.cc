/** @file Unit tests for the Barnes-Hut N-body workload. */

#include <gtest/gtest.h>

#include <cmath>

#include "cachesim/hierarchy.hh"
#include "machine/machine_config.hh"
#include "workloads/nbody.hh"

namespace
{

using namespace lsched::workloads;

NBodyConfig
smallConfig(std::size_t bodies = 256)
{
    NBodyConfig c;
    c.bodies = bodies;
    c.theta = 0.6;
    c.seed = 99;
    return c;
}

TEST(NBodyTree, EveryBodyInsertedExactlyOnce)
{
    BarnesHut sim(smallConfig());
    NativeModel m;
    sim.buildTree(m);
    std::size_t leaf_bodies = 0;
    for (const auto &node : sim.nodes())
        if (node.leaf && node.body >= 0)
            ++leaf_bodies;
    EXPECT_EQ(leaf_bodies, sim.bodies().size());
}

TEST(NBodyTree, RootMassIsTotalMass)
{
    BarnesHut sim(smallConfig());
    NativeModel m;
    sim.buildTree(m);
    double total = 0;
    for (const auto &b : sim.bodies())
        total += b.mass;
    EXPECT_NEAR(sim.nodes()[0].mass, total, 1e-12);
}

TEST(NBodyTree, CentreOfMassIsMassWeightedMean)
{
    BarnesHut sim(smallConfig(64));
    NativeModel m;
    sim.buildTree(m);
    double mx = 0, total = 0;
    for (const auto &b : sim.bodies()) {
        mx += b.mass * b.x;
        total += b.mass;
    }
    EXPECT_NEAR(sim.nodes()[0].mx, mx / total, 1e-10);
}

TEST(NBodyTree, ChildrenNestInsideParents)
{
    BarnesHut sim(smallConfig(128));
    NativeModel m;
    sim.buildTree(m);
    const auto &nodes = sim.nodes();
    for (const auto &node : nodes) {
        for (const auto child_idx : node.child) {
            if (child_idx < 0)
                continue;
            const auto &child =
                nodes[static_cast<std::size_t>(child_idx)];
            EXPECT_NEAR(child.half * 2, node.half, 1e-12);
            EXPECT_LE(std::abs(child.cx - node.cx), node.half);
            EXPECT_LE(std::abs(child.cy - node.cy), node.half);
            EXPECT_LE(std::abs(child.cz - node.cz), node.half);
        }
    }
}

TEST(NBody, TwoBodyForceIsNewtonian)
{
    NBodyConfig cfg;
    cfg.bodies = 2;
    cfg.theta = 0.0; // always open: exact pairwise
    cfg.softening = 0.0;
    BarnesHut sim(cfg);
    auto &bodies = sim.mutableBodies();
    bodies[0] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 2.0};
    bodies[1] = {3, 4, 0, 0, 0, 0, 0, 0, 0, 1.0};
    NativeModel m;
    sim.buildTree(m);
    sim.computeForce(0, m);
    sim.computeForce(1, m);
    // |a0| = m1 / r^2 = 1 / 25, direction towards body 1.
    const double r = 5.0;
    EXPECT_NEAR(sim.bodies()[0].ax, (3.0 / r) * 1.0 / 25.0, 1e-12);
    EXPECT_NEAR(sim.bodies()[0].ay, (4.0 / r) * 1.0 / 25.0, 1e-12);
    EXPECT_NEAR(sim.bodies()[1].ax, -(3.0 / r) * 2.0 / 25.0, 1e-12);
    // Newton's third law with equal masses scaled.
    EXPECT_NEAR(sim.bodies()[0].ax * 2.0, -sim.bodies()[1].ax * 1.0,
                1e-12);
}

TEST(NBody, ThetaZeroMatchesDirectSummation)
{
    const std::size_t n = 64;
    NBodyConfig cfg = smallConfig(n);
    cfg.theta = 0.0;
    BarnesHut sim(cfg);
    NativeModel m;
    sim.buildTree(m);
    for (std::size_t i = 0; i < n; ++i)
        sim.computeForce(i, m);

    // Direct O(n^2) reference with the same softening.
    const auto &bodies = sim.bodies();
    for (std::size_t i = 0; i < n; ++i) {
        double ax = 0, ay = 0, az = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const double dx = bodies[j].x - bodies[i].x;
            const double dy = bodies[j].y - bodies[i].y;
            const double dz = bodies[j].z - bodies[i].z;
            const double d2 = dx * dx + dy * dy + dz * dz +
                              cfg.softening * cfg.softening;
            const double f = bodies[j].mass / (d2 * std::sqrt(d2));
            ax += f * dx;
            ay += f * dy;
            az += f * dz;
        }
        EXPECT_NEAR(bodies[i].ax, ax, 1e-9) << "body " << i;
        EXPECT_NEAR(bodies[i].ay, ay, 1e-9);
        EXPECT_NEAR(bodies[i].az, az, 1e-9);
    }
}

TEST(NBody, ModerateThetaApproximatesDirectForce)
{
    const std::size_t n = 256;
    NBodyConfig cfg = smallConfig(n);
    cfg.theta = 0.5;
    BarnesHut sim(cfg);
    NativeModel m;
    sim.buildTree(m);
    double err = 0, mag = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sim.computeForce(i, m);
        const Body &b = sim.bodies()[i];
        double ax = 0, ay = 0, az = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const Body &o = sim.bodies()[j];
            const double dx = o.x - b.x, dy = o.y - b.y, dz = o.z - b.z;
            const double d2 = dx * dx + dy * dy + dz * dz +
                              cfg.softening * cfg.softening;
            const double f = o.mass / (d2 * std::sqrt(d2));
            ax += f * dx;
            ay += f * dy;
            az += f * dz;
        }
        err += std::abs(b.ax - ax) + std::abs(b.ay - ay) +
               std::abs(b.az - az);
        mag += std::abs(ax) + std::abs(ay) + std::abs(az);
    }
    EXPECT_LT(err / mag, 0.05); // within 5% aggregate
}

TEST(NBody, ThreadedTrajectoryBitwiseEqualsUnthreaded)
{
    const std::size_t n = 512;
    BarnesHut a(smallConfig(n));
    BarnesHut b(smallConfig(n));
    NativeModel m;
    lsched::threads::SchedulerConfig cfg;
    cfg.dims = 3;
    cfg.cacheBytes = 1 << 16;
    lsched::threads::LocalityScheduler sched(cfg);
    for (int step = 0; step < 3; ++step) {
        a.stepUnthreaded(m);
        b.stepThreaded(sched, m, 4 * (1u << 16) / 3);
    }
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(a.bodies()[i].x, b.bodies()[i].x);
        EXPECT_EQ(a.bodies()[i].y, b.bodies()[i].y);
        EXPECT_EQ(a.bodies()[i].z, b.bodies()[i].z);
        EXPECT_EQ(a.bodies()[i].vx, b.bodies()[i].vx);
    }
}

TEST(NBody, ThreadedBinsFollowSpatialClustering)
{
    const std::size_t n = 2048;
    BarnesHut sim(smallConfig(n));
    NativeModel m;
    lsched::threads::SchedulerConfig cfg;
    cfg.dims = 3;
    cfg.cacheBytes = 3 << 16;
    lsched::threads::LocalityScheduler sched(cfg);
    sim.stepThreaded(sched, m, 4 * (1u << 16));
    const auto st = sched.stats();
    EXPECT_EQ(st.executedThreads, n);
    // Plummer clustering: several bins, non-uniform occupancy.
    EXPECT_GT(st.bins, 8u);
    EXPECT_LT(st.bins, 128u);
}

TEST(NBody, MomentumApproximatelyConserved)
{
    BarnesHut sim(smallConfig(256));
    NativeModel m;
    const double before = sim.momentum();
    for (int step = 0; step < 5; ++step)
        sim.stepUnthreaded(m);
    // theta > 0 breaks exact symmetry; drift must stay small relative
    // to typical velocities (~0.05 * 256 bodies * mass 1/256).
    EXPECT_NEAR(sim.momentum(), before, 0.02);
}

TEST(NBody, DeterministicAcrossRuns)
{
    BarnesHut a(smallConfig(128));
    BarnesHut b(smallConfig(128));
    NativeModel m;
    a.stepUnthreaded(m);
    b.stepUnthreaded(m);
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_EQ(a.bodies()[i].x, b.bodies()[i].x);
}

TEST(NBody, TracedStepMatchesNative)
{
    BarnesHut a(smallConfig(128));
    BarnesHut b(smallConfig(128));
    NativeModel nm;
    lsched::cachesim::Hierarchy h(
        lsched::machine::scaled(lsched::machine::powerIndigo2R8000(), 64)
            .caches);
    SimModel sm(h);
    a.stepUnthreaded(nm);
    b.stepUnthreaded(sm);
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_EQ(a.bodies()[i].x, b.bodies()[i].x);
    EXPECT_GT(h.dataRefs(), 128u * 20);
}

} // namespace
