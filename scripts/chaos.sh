#!/usr/bin/env sh
# chaos: sweep the randomized chaos harness (tests/test_chaos.cc)
# across a range of seeds. Each seed is one LSCHED_CHAOS_SEED schedule
# of injected faults, wedged-worker stalls, deadlines, and producer
# bursts; a failure prints the seed so the schedule replays exactly:
#
#   LSCHED_CHAOS_SEED=<seed> <build>/tests/lsched_chaos_tests
#
# Usage: chaos.sh [-p preset] [-n seeds] [-s first-seed] [-o outdir]
#
#   -p preset      ctest/build preset to use (default: tsan — the
#                  harness is meant to run under ThreadSanitizer;
#                  pass "default" for a quick unsanitized sweep)
#   -n seeds       number of seeds to run (default: 20)
#   -s first-seed  first seed of the sweep (default: 1)
#   -o outdir      where failing-seed logs are written
#                  (default: chaos-artifacts)
#
# The caller is expected to have configured and built the preset
# already (scripts/check-all.sh and the CI chaos job both do); the
# script builds the chaos target itself as a cheap no-op check.
# Per-seed runs are wall-clock bounded: a hang is a failure, not a
# stuck sweep.

set -eu

cd "$(dirname "$0")/.."

preset=tsan
seeds=20
first=1
outdir=chaos-artifacts
while getopts "p:n:s:o:" opt; do
    case "$opt" in
    p) preset="$OPTARG" ;;
    n) seeds="$OPTARG" ;;
    s) first="$OPTARG" ;;
    o) outdir="$OPTARG" ;;
    *) echo "usage: $0 [-p preset] [-n seeds] [-s first] [-o outdir]" >&2
       exit 2 ;;
    esac
done

case "$preset" in
default) builddir=build ;;
*) builddir="build-$preset" ;;
esac
binary="$builddir/tests/lsched_chaos_tests"

cmake --build --preset "$preset" --target lsched_chaos_tests
[ -x "$binary" ] || { echo "chaos: $binary not built" >&2; exit 1; }

# Per-seed wall-clock bound (seconds). A schedule is ~10 short rounds;
# even under TSan it finishes in well under a minute — anything past
# the bound is the hang the harness exists to catch.
bound=300
have_timeout=0
command -v timeout >/dev/null 2>&1 && have_timeout=1

mkdir -p "$outdir"
failed=0
last=$((first + seeds - 1))
seed="$first"
while [ "$seed" -le "$last" ]; do
    log="$outdir/seed-$seed.log"
    if [ "$have_timeout" -eq 1 ]; then
        LSCHED_CHAOS_SEED="$seed" timeout "$bound" \
            "$binary" >"$log" 2>&1 && ok=1 || ok=0
    else
        LSCHED_CHAOS_SEED="$seed" "$binary" >"$log" 2>&1 && ok=1 || ok=0
    fi
    if [ "$ok" -eq 1 ]; then
        echo "chaos seed $seed: OK"
        rm -f "$log"
    else
        echo "chaos seed $seed: FAILED (log: $log)" >&2
        failed=$((failed + 1))
    fi
    seed=$((seed + 1))
done

if [ "$failed" -gt 0 ]; then
    echo "chaos: $failed of $seeds seed(s) failed; replay with" >&2
    echo "  LSCHED_CHAOS_SEED=<seed> $binary" >&2
    exit 1
fi
rmdir "$outdir" 2>/dev/null || true
echo "chaos: all $seeds seed(s) green ($preset preset)"
