#!/usr/bin/env sh
# check-all: the one-command CI matrix. Configures, builds, and ctests
# every supported build flavor via the CMake presets:
#
#   default       full RelWithDebInfo suite
#   tsan          fault + obs + pool suites under ThreadSanitizer
#   notrace       full suite with tracing compiled out
#   nofailpoints  full suite with fail points compiled out
#
# Runs from anywhere inside the repo; stops at the first failure.
# Pass -j N to override the build parallelism (default: nproc).

set -eu

cd "$(dirname "$0")/.."

jobs="$( (nproc || sysctl -n hw.ncpu) 2>/dev/null || echo 4)"
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j jobs]" >&2; exit 2 ;;
    esac
done

run() {
    echo "== $* =="
    "$@"
}

check() {
    configure="$1"
    testpreset="$2"
    run cmake --preset "$configure"
    run cmake --build --preset "$configure" -j "$jobs"
    run ctest --preset "$testpreset"
}

check default default
check tsan tsan-fault
check notrace notrace
check nofailpoints nofailpoints

echo "== check-all: all presets green =="
