#!/usr/bin/env sh
# check-all: the one-command CI matrix. Configures, builds, and ctests
# every supported build flavor via the CMake presets:
#
#   default       full RelWithDebInfo suite (run twice: once as-is,
#                 once with LSCHED_TOPOLOGY=flat forcing legacy flat
#                 placement)
#   tsan          fault + obs + pool suites under ThreadSanitizer
#   asan          stream + chaos suites under ASan/UBSan (the
#                 lock-free admission path's reclamation story)
#   notrace       full suite with tracing compiled out
#   nofailpoints  full suite with fail points compiled out
#
# Runs from anywhere inside the repo; stops at the first failure.
# Pass -j N to override the build parallelism (default: nproc).

set -eu

cd "$(dirname "$0")/.."

jobs="$( (nproc || sysctl -n hw.ncpu) 2>/dev/null || echo 4)"
while getopts "j:" opt; do
    case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j jobs]" >&2; exit 2 ;;
    esac
done

run() {
    echo "== $* =="
    "$@"
}

check() {
    configure="$1"
    testpreset="$2"
    run cmake --preset "$configure"
    run cmake --build --preset "$configure" -j "$jobs"
    run ctest --preset "$testpreset"
}

# The notrace preset must compile the profiling hooks out entirely:
# the scheduler's hot translation units may not reference a single
# profiler symbol (obs/profile.hh's inline hooks are empty there).
# config_keys.cc / c_api.cc / adapt.cc legitimately keep references —
# they are the cold configuration/retune surface, not the hot path
# (adapt.cc polls the profiler only at tour and epoch boundaries).
check_notrace_profiler_free() {
    dir="build-notrace/src/threads/CMakeFiles/lsched_threads.dir"
    for obj in worker_pool.cc.o execution.cc.o stream.cc.o \
               scheduler.cc.o parallel_scheduler.cc.o \
               recovery.cc.o; do
        path="$dir/$obj"
        [ -f "$path" ] || { echo "missing $path" >&2; exit 1; }
        if nm -u "$path" | grep -qi profil; then
            echo "FAIL: notrace $obj references profiler symbols:" >&2
            nm -u "$path" | grep -i profil >&2
            exit 1
        fi
    done
    echo "== notrace hot path carries no profiler symbols =="
}

check default default

# The full default suite again with topology discovery forced off:
# LSCHED_TOPOLOGY=flat must reproduce the legacy flat placement
# byte for byte on any host, whatever its sysfs exposes.
run env LSCHED_TOPOLOGY=flat ctest --preset default

check tsan tsan-fault

# The streaming suites again under ASan/UBSan: TSan proves the
# admission path race-free, this leg proves the epoch reclamation
# (retired tables, recycled groups, spare bins) never frees early
# and the lock-free pointer arithmetic stays defined.
check asan asan-stream

check notrace notrace
check_notrace_profiler_free
check nofailpoints nofailpoints

# Seeded chaos sweep under TSan (the tsan preset was built above):
# randomized fault/stall/deadline schedules through batch and
# streaming tours, wall-clock bounded per seed.
run scripts/chaos.sh -p tsan -n 20

echo "== check-all: all presets green =="
