/**
 * @file
 * Domain example 5: dependencies with the general-purpose package.
 *
 * The run-to-completion package "would not be convenient to program
 * algorithms that have complex dependencies" (paper Section 6), and
 * Section 7 asks whether the locality algorithm fits a general-
 * purpose thread package. This example shows both answers: a small
 * blocked LU-style pipeline where column tasks must wait for the
 * pivot task of their block (expressed with fibers::Event), while
 * the tasks are still binned by address hints so cache locality is
 * preserved around the suspensions.
 *
 * Run:  ./examples/fiber_pipeline [n_blocks] [block_elems]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fibers/general_scheduler.hh"
#include "support/prng.hh"
#include "support/timer.hh"
#include "threads/hints.hh"

namespace
{

using namespace lsched;
using namespace lsched::fibers;

struct Pipeline
{
    std::size_t nBlocks;
    std::size_t blockElems;
    std::vector<double> data;       // nBlocks * blockElems
    std::vector<Event> pivotReady;  // one per block
    std::vector<double> pivots;
    std::uint64_t suspensions = 0;
};

struct PivotJob
{
    Pipeline *p;
    std::size_t block;
};

struct UpdateJob
{
    Pipeline *p;
    std::size_t block;
    std::size_t chunk;
    std::size_t chunks;
};

/** Pivot task: reduce its block to one scaling factor, then signal. */
void
pivotTask(void *arg)
{
    auto *job = static_cast<PivotJob *>(arg);
    Pipeline &p = *job->p;
    double *base = &p.data[job->block * p.blockElems];
    double sum = 0;
    for (std::size_t i = 0; i < p.blockElems; ++i)
        sum += base[i] * base[i];
    p.pivots[job->block] = 1.0 / (1.0 + sum / p.blockElems);
    p.pivotReady[job->block].signal();
}

/** Update task: waits for its block's pivot, then scales a chunk. */
void
updateTask(void *arg)
{
    auto *job = static_cast<UpdateJob *>(arg);
    Pipeline &p = *job->p;
    if (!p.pivotReady[job->block].signalled())
        ++p.suspensions;
    p.pivotReady[job->block].wait();
    const double pivot = p.pivots[job->block];
    double *base = &p.data[job->block * p.blockElems];
    const std::size_t per = p.blockElems / job->chunks;
    double *chunk = base + job->chunk * per;
    for (std::size_t i = 0; i < per; ++i)
        chunk[i] *= pivot;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t n_blocks =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
    const std::size_t block_elems =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                 : 16384;
    const std::size_t chunks = 8;

    Pipeline p;
    p.nBlocks = n_blocks;
    p.blockElems = block_elems;
    p.data.resize(n_blocks * block_elems);
    p.pivotReady = std::vector<Event>(n_blocks);
    p.pivots.assign(n_blocks, 0.0);
    Prng prng(7);
    for (double &v : p.data)
        v = prng.nextDouble(-1.0, 1.0);

    GeneralSchedulerConfig cfg;
    cfg.dims = 1;
    cfg.blockBytes = block_elems * sizeof(double);
    GeneralScheduler sched(cfg);

    // Fork update tasks FIRST (so some genuinely block), then pivots:
    // the dependency structure, not fork order, drives correctness.
    std::vector<UpdateJob> updates;
    updates.reserve(n_blocks * chunks);
    for (std::size_t b = 0; b < n_blocks; ++b)
        for (std::size_t c = 0; c < chunks; ++c)
            updates.push_back({&p, b, c, chunks});
    for (auto &job : updates) {
        sched.fork(&updateTask, &job,
                   threads::hintOf(&p.data[job.block * block_elems]));
    }
    std::vector<PivotJob> pivots;
    pivots.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b)
        pivots.push_back({&p, b});
    for (auto &job : pivots) {
        sched.fork(&pivotTask, &job,
                   threads::hintOf(&p.data[job.block * block_elems]));
    }

    WallTimer timer;
    const std::uint64_t finished = sched.run();
    const double seconds = timer.seconds();

    std::printf("fiber_pipeline: %zu blocks x %zu update chunks + %zu "
                "pivots = %llu fibers in %.3f s\n",
                n_blocks, chunks, n_blocks,
                static_cast<unsigned long long>(finished), seconds);
    std::printf("  bins used           : %zu\n", sched.binCount());
    std::printf("  fibers that blocked : %llu (resumed after their "
                "pivot signalled)\n",
                static_cast<unsigned long long>(p.suspensions));
    std::printf("  stacks allocated    : %zu (recycled across %llu "
                "fibers)\n",
                sched.stacksAllocated(),
                static_cast<unsigned long long>(finished));

    // Verify: every element scaled by its block's pivot exactly once.
    Prng verify(7);
    double worst = 0;
    for (std::size_t b = 0; b < n_blocks; ++b) {
        for (std::size_t i = 0; i < block_elems; ++i) {
            const double original = verify.nextDouble(-1.0, 1.0);
            const double expect = original * p.pivots[b];
            const double got = p.data[b * block_elems + i];
            worst = std::max(worst, std::abs(expect - got));
        }
    }
    std::printf("  max |error|         : %.3g  (%s)\n", worst,
                worst < 1e-12 ? "OK" : "FAILED");
    return worst < 1e-12 ? 0 : 1;
}
