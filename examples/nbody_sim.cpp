/**
 * @file
 * Domain example 2: the paper's irregular application. Runs the
 * Barnes-Hut N-body simulation with locality-scheduled force threads
 * (one per body, hinted by position) and reports per-step physics and
 * scheduling statistics. No compile-time reference information exists
 * here — the case where the paper argues runtime scheduling shines.
 *
 * Run:  ./examples/nbody_sim [bodies] [steps]
 */

#include <cstdio>
#include <cstdlib>

#include "support/timer.hh"
#include "threads/scheduler.hh"
#include "workloads/nbody.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    NBodyConfig cfg;
    cfg.bodies =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16384;
    const unsigned steps =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

    std::printf("nbody_sim: %zu bodies (Plummer sphere), theta = %.2f, "
                "%u steps\n\n",
                cfg.bodies, cfg.theta, steps);

    BarnesHut sim(cfg);

    threads::SchedulerConfig scfg;
    scfg.dims = 3;
    scfg.cacheBytes = 2 * 1024 * 1024;
    threads::LocalityScheduler sched(scfg);

    NativeModel model;
    for (unsigned s = 0; s < steps; ++s) {
        WallTimer timer;
        sim.stepThreaded(sched, model, 4 * scfg.cacheBytes / 3);
        const auto stats = sched.stats();
        std::printf("step %u: %.3f s, tree nodes %zu, bins %llu, "
                    "threads/bin mean %.0f (cv %.2f), momentum %.4f\n",
                    s + 1, timer.seconds(), sim.nodes().size(),
                    static_cast<unsigned long long>(stats.bins),
                    stats.threadsPerBin.mean(),
                    stats.threadsPerBin.coefficientOfVariation(),
                    sim.momentum());
    }

    // Where did the bodies end up?
    double cx = 0, cy = 0, cz = 0;
    for (const Body &b : sim.bodies()) {
        cx += b.x;
        cy += b.y;
        cz += b.z;
    }
    const double inv = 1.0 / static_cast<double>(cfg.bodies);
    std::printf("\ncentre of cluster: (%.4f, %.4f, %.4f)\n", cx * inv,
                cy * inv, cz * inv);
    std::printf("note: thread distribution over bins is non-uniform "
                "because it mirrors the spatial body distribution "
                "(paper Section 4.4)\n");
    return 0;
}
