/**
 * @file
 * Domain example 1: watching locality scheduling work.
 *
 * Runs the untiled and threaded matrix multiplies through the cache
 * simulator of the paper's R8000 machine (proportionally scaled) and
 * prints the second-level cache miss breakdown side by side, then
 * sweeps the block size to show the Figure-4 cliff. This is the
 * programmatic (C++) API: LocalityScheduler, SimModel, Hierarchy.
 *
 * Run:  ./examples/matmul_locality [n] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "machine/machine_config.hh"
#include "workloads/matmul.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    const std::size_t n =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 128;
    const unsigned scale =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 64;

    const auto machine =
        machine::scaled(machine::powerIndigo2R8000(), scale);
    std::printf("matmul_locality: n = %zu on %s\n\n", n,
                machine.name.c_str());

    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);

    const auto untiled = harness::simulateOn(machine, [&](SimModel &m) {
        Matrix c(n, n);
        matmulInterchanged(a, b, c, m);
    });

    std::uint64_t bins = 0;
    const auto threaded = harness::simulateOn(machine, [&](SimModel &m) {
        Matrix c(n, n);
        threads::SchedulerConfig cfg;
        cfg.dims = 2;
        cfg.cacheBytes = machine.l2Size();
        cfg.blockBytes = machine.l2Size() / 2;
        threads::LocalityScheduler sched(cfg);
        matmulThreaded(a, b, c, sched, m);
        bins = sched.stats().executedThreads > 0 ? sched.binCount() : 0;
    });

    std::fputs(harness::cacheTable("L2 behaviour, untiled vs threaded "
                                   "(thousands)",
                                   {{"Untiled", untiled},
                                    {"Threaded", threaded}})
                   .toText()
                   .c_str(),
               stdout);
    std::printf("\n%llu x %llu threads were scheduled into %llu "
                "bins\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(bins));
    std::printf("estimated time: untiled %.4f s, threaded %.4f s "
                "(%.1fx)\n\n",
                untiled.estimatedSeconds(machine),
                threaded.estimatedSeconds(machine),
                untiled.estimatedSeconds(machine) /
                    threaded.estimatedSeconds(machine));

    // The Figure-4 story in miniature: block too big -> cliff.
    std::printf("block-size sweep (est. seconds):\n");
    for (std::uint64_t block = machine.l2Size() / 8;
         block <= machine.l2Size() * 4; block *= 2) {
        const auto outcome =
            harness::simulateOn(machine, [&](SimModel &m) {
                Matrix c(n, n);
                threads::SchedulerConfig cfg;
                cfg.dims = 2;
                cfg.cacheBytes = machine.l2Size();
                cfg.blockBytes = block;
                threads::LocalityScheduler sched(cfg);
                matmulThreaded(a, b, c, sched, m);
            });
        std::printf("  block %6llu KB : %.4f s%s\n",
                    static_cast<unsigned long long>(block / 1024),
                    outcome.estimatedSeconds(machine),
                    2 * block > machine.l2Size() ? "   <- sum of dims "
                                                   "exceeds L2"
                                                 : "");
    }
    return 0;
}
