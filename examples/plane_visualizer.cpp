/**
 * @file
 * Domain example 6: visualizing the scheduling plane.
 *
 * Renders the paper's Figures 1 and 2 for a real workload: an ASCII
 * heat map of the two-dimensional scheduling plane showing how many
 * threads each block received, plus the creation-order tour through
 * the occupied bins. Run it for the matmul example (uniform grid, the
 * paper's Figure 2) and for N-body (clustered occupancy mirroring the
 * spatial body distribution, Section 4.4).
 *
 * Run:  ./examples/plane_visualizer [matmul|nbody] [n_or_bodies]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "threads/scheduler.hh"
#include "workloads/matmul.hh"
#include "workloads/nbody.hh"

namespace
{

using namespace lsched;
using namespace lsched::workloads;

/** Collect per-block thread counts by replaying binOccupancy. */
struct PlaneCounts
{
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        blocks;
    std::uint64_t maxCount = 0;
};

char
shade(std::uint64_t count, std::uint64_t max)
{
    static const char levels[] = " .:-=+*#%@";
    if (count == 0 || max == 0)
        return ' ';
    const std::size_t idx =
        1 + count * 8 / max; // 1..9
    return levels[std::min<std::size_t>(idx, 9)];
}

void
render(const PlaneCounts &plane, const char *xlabel, const char *ylabel)
{
    std::uint64_t max_x = 0, max_y = 0, min_x = ~0ull, min_y = ~0ull;
    for (const auto &[coords, count] : plane.blocks) {
        min_x = std::min(min_x, coords.first);
        max_x = std::max(max_x, coords.first);
        min_y = std::min(min_y, coords.second);
        max_y = std::max(max_y, coords.second);
    }
    std::printf("occupancy heat map (rows = %s block, cols = %s "
                "block, dark = more threads):\n\n",
                ylabel, xlabel);
    for (std::uint64_t y = min_y; y <= max_y; ++y) {
        std::printf("  %3llu |",
                    static_cast<unsigned long long>(y - min_y));
        for (std::uint64_t x = min_x; x <= max_x; ++x) {
            const auto it = plane.blocks.find({x, y});
            const std::uint64_t c =
                it == plane.blocks.end() ? 0 : it->second;
            std::printf("%c", shade(c, plane.maxCount));
        }
        std::printf("|\n");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const char *mode = argc > 1 ? argv[1] : "matmul";

    threads::SchedulerConfig cfg;
    PlaneCounts plane;

    if (std::strcmp(mode, "nbody") == 0) {
        const std::size_t bodies =
            argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2]))
                     : 16384;
        NBodyConfig ncfg;
        ncfg.bodies = bodies;
        BarnesHut sim(ncfg);
        NativeModel model;
        sim.buildTree(model);

        cfg.dims = 2; // project x/y for a 2-D picture
        cfg.cacheBytes = 1 << 16;
        cfg.blockBytes = (1 << 16) / 8; // 8 blocks per axis
        threads::LocalityScheduler sched(cfg);
        const auto &root = sim.nodes()[0];
        const double scale =
            static_cast<double>(8 * cfg.blockBytes) /
            (2.0 * root.half);
        auto noop = [](void *, void *) {};
        for (const Body &b : sim.bodies()) {
            const auto hx = static_cast<threads::Hint>(
                (b.x - (root.cx - root.half)) * scale);
            const auto hy = static_cast<threads::Hint>(
                (b.y - (root.cy - root.half)) * scale);
            sched.fork(noop, nullptr, nullptr, hx, hy);
            const auto c = sched.coordsFor(
                std::span<const threads::Hint>(
                    std::array<threads::Hint, 2>{hx, hy}.data(), 2));
            const auto key = std::make_pair(c[0], c[1]);
            plane.maxCount =
                std::max(plane.maxCount, ++plane.blocks[key]);
        }
        std::printf("plane_visualizer: %zu Plummer bodies, 8x8 "
                    "blocks — occupancy mirrors the cluster "
                    "(paper Section 4.4: \"much less uniform\")\n\n",
                    bodies);
        render(plane, "x-position", "y-position");
        std::printf("bins used: %llu, threads/bin cv: %.2f\n",
                    static_cast<unsigned long long>(
                        sched.stats().occupiedBins),
                    sched.stats().threadsPerBin
                        .coefficientOfVariation());
        sched.clear();
        return 0;
    }

    const std::size_t n =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 256;
    Matrix a(n, n), b(n, n);
    randomize(a, 1);
    randomize(b, 2);
    Matrix at(n, n);
    NativeModel model;
    transpose(a, at, model);

    // Plane sized so the two matrices span ~12 blocks per axis.
    const std::uint64_t matrix_bytes = n * n * sizeof(double);
    cfg.dims = 2;
    cfg.blockBytes = std::max<std::uint64_t>(matrix_bytes / 12, 4096);
    cfg.cacheBytes = cfg.blockBytes * 2;
    threads::LocalityScheduler sched(cfg);

    auto noop = [](void *, void *) {};
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const threads::Hint h1 = threads::hintOf(at.col(i));
            const threads::Hint h2 = threads::hintOf(b.col(j));
            sched.fork(noop, nullptr, nullptr, h1, h2);
            const auto c = sched.coordsFor(
                std::span<const threads::Hint>(
                    std::array<threads::Hint, 2>{h1, h2}.data(), 2));
            const auto key = std::make_pair(c[0], c[1]);
            plane.maxCount =
                std::max(plane.maxCount, ++plane.blocks[key]);
        }
    }
    std::printf("plane_visualizer: %zu x %zu dot-product threads, "
                "hints = (column of At, column of B) — the paper's "
                "Figure 2 grid, uniformly filled\n\n",
                n, n);
    render(plane, "B-column", "At-column");
    std::printf("bins used: %llu, threads/bin cv: %.2f (uniform, as "
                "Section 4.2 reports)\n",
                static_cast<unsigned long long>(
                    sched.stats().occupiedBins),
                sched.stats().threadsPerBin.coefficientOfVariation());
    sched.clear();
    return 0;
}
