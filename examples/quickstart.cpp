/**
 * @file
 * Quickstart: the paper's three-call interface on its own running
 * example (Section 2.1) — a matrix multiply where each dot product is
 * a fine-grained thread hinted with the two column addresses it
 * reads.
 *
 *   th_init(blocksize, hashsize);   // 0 = defaults
 *   th_fork(f, arg1, arg2, h1, h2, h3);
 *   th_run(keep);
 *
 * Build and run:  ./examples/quickstart --n=256
 * Add --trace=run.json to capture a Perfetto-loadable timeline or
 * --metrics=run.txt for the scheduler counters (built-in Cli options).
 */

#include <cstdio>
#include <cstdlib>

#include "support/cli.hh"
#include "threads/c_api.hh"
#include "workloads/matmul.hh"

namespace
{

using lsched::workloads::Matrix;

struct Problem
{
    const Matrix *at; // A transposed: column i = row i of A
    const Matrix *b;
    Matrix *c;
};

/** One fine-grained thread: C[i,j] = dot(At[:,i], B[:,j]). */
void
dotProduct(void *problem_p, void *ij_p)
{
    auto *p = static_cast<Problem *>(problem_p);
    const auto packed = reinterpret_cast<std::uintptr_t>(ij_p);
    const std::size_t i = packed >> 16;
    const std::size_t j = packed & 0xffff;
    const std::size_t n = p->at->rows();
    double sum = 0;
    for (std::size_t k = 0; k < n; ++k)
        sum += (*p->at)(k, i) * (*p->b)(k, j);
    (*p->c)(i, j) = sum;
}

} // namespace

int
main(int argc, char **argv)
{
    lsched::Cli cli("quickstart",
                    "the paper's th_init/th_fork/th_run interface on "
                    "its matrix-multiply running example");
    cli.addInt("n", 256, "matrix dimension");
    cli.parse(argc, argv);
    const std::size_t n = static_cast<std::size_t>(cli.getInt("n"));

    Matrix a(n, n), b(n, n), c(n, n), at(n, n);
    lsched::workloads::randomize(a, 1);
    lsched::workloads::randomize(b, 2);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k)
            at(k, i) = a(i, k);

    // Configure the scheduler: default block size (cache/k) and hash
    // table, exactly like the paper's th_init(0, 0).
    th_init(0, 0);

    // Fork one thread per dot product. The hints are the addresses of
    // the two vectors the thread will read.
    Problem problem{&at, &b, &c};
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            th_fork(&dotProduct, &problem,
                    reinterpret_cast<void *>((i << 16) | j),
                    at.col(i), b.col(j), nullptr);
        }
    }

    // Run all threads, bins in creation order.
    th_run(0);

    // Show how the scheduler clustered the work, via the named
    // metric surface (th_stats() still works, but its struct is
    // frozen — new telemetry only appears here).
    unsigned long long executed = 0, bins = 0;
    th_metric_get("sched.executed_threads", &executed);
    th_metric_get("sched.bins", &bins);
    std::printf("quickstart: C = A * B with %zu x %zu fine-grained "
                "threads\n",
                n, n);
    std::printf("  threads executed : %llu\n", executed);
    std::printf("  bins used        : %llu\n", bins);
    std::printf("  spot check       : C[0,0] = %.6f\n", c(0, 0));

    // Verify against a plain triple loop.
    double worst = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double sum = 0;
            for (std::size_t k = 0; k < n; ++k)
                sum += a(i, k) * b(k, j);
            worst = std::max(worst, std::abs(sum - c(i, j)));
        }
    }
    std::printf("  max |error|      : %.3g  (%s)\n", worst,
                worst < 1e-9 ? "OK" : "FAILED");
    return worst < 1e-9 ? 0 : 1;
}
