/**
 * @file
 * Domain example 3: driving the cache-simulation substrate directly.
 *
 * Streams three canonical access patterns — sequential, strided, and
 * random — through the two-level hierarchy of a chosen machine and
 * prints the miss breakdown, demonstrating the single-run
 * compulsory / capacity / conflict classifier that backs the paper's
 * cache tables.
 *
 * Run:  ./examples/cache_explorer [r8000|r10000] [footprint_kb]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "machine/machine_config.hh"
#include "support/prng.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;

    const char *which = argc > 1 ? argv[1] : "r8000";
    const std::uint64_t footprint_kb =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 8 * 1024;

    machine::MachineConfig mc;
    if (std::strcmp(which, "r10000") == 0)
        mc = machine::indigo2ImpactR10000();
    else
        mc = machine::powerIndigo2R8000();

    const std::uint64_t footprint = footprint_kb * 1024;
    const std::uint64_t base = 0x10000000;
    const int passes = 4;

    std::printf("cache_explorer: %s, footprint %llu KB (L2 = %llu "
                "KB), %d passes per pattern\n\n",
                mc.name.c_str(),
                static_cast<unsigned long long>(footprint_kb),
                static_cast<unsigned long long>(mc.l2Size() / 1024),
                passes);

    auto run_pattern = [&](const char *name, auto &&gen) {
        cachesim::Hierarchy h(mc.caches);
        gen(h);
        const auto o = harness::snapshot(h);
        std::printf("%-12s L2: %10llu misses  (compulsory %llu / "
                    "capacity %llu / conflict %llu)  rate %.2f%%\n",
                    name,
                    static_cast<unsigned long long>(o.l2.misses),
                    static_cast<unsigned long long>(
                        o.l2.compulsoryMisses),
                    static_cast<unsigned long long>(
                        o.l2.capacityMisses),
                    static_cast<unsigned long long>(
                        o.l2.conflictMisses),
                    o.l2RatePercent);
    };

    run_pattern("sequential", [&](cachesim::Hierarchy &h) {
        for (int p = 0; p < passes; ++p)
            for (std::uint64_t a = 0; a < footprint; a += 8)
                h.load(base + a, 8);
    });

    // Stride of one L2 line: same traffic per line, no spatial reuse.
    run_pattern("strided", [&](cachesim::Hierarchy &h) {
        const std::uint64_t stride = mc.caches.l2.lineBytes;
        for (int p = 0; p < passes; ++p)
            for (std::uint64_t a = 0; a < footprint; a += stride)
                h.load(base + a, 8);
    });

    run_pattern("random", [&](cachesim::Hierarchy &h) {
        Prng prng(1);
        const std::uint64_t accesses =
            passes * footprint / mc.caches.l2.lineBytes;
        for (std::uint64_t i = 0; i < accesses; ++i)
            h.load(base + (prng.nextBelow(footprint) & ~7ull), 8);
    });

    // A pathological conflict pattern: many lines, one set.
    run_pattern("same-set", [&](cachesim::Hierarchy &h) {
        const auto &l2 = mc.caches.l2;
        const std::uint64_t set_stride =
            l2.numSets() * l2.lineBytes; // same L2 set every time
        for (int p = 0; p < passes; ++p)
            for (std::uint64_t i = 0; i < 4 * l2.ways(); ++i)
                h.load(base + i * set_stride, 8);
    });

    std::printf("\nreading the rows: footprint > cache turns repeat "
                "passes into capacity misses; the same-set pattern "
                "shows pure conflict misses despite a tiny "
                "footprint.\n");
    return 0;
}
