/**
 * @file
 * Domain example 4: the full context of the paper's PDE experiment —
 * a geometric multigrid Poisson solver whose red-black smoother is
 * decomposed into locality-scheduled line-pair threads (Section 4.3
 * says the relaxation kernel "is meant to be nested inside a
 * multigrid partial differential equation solver").
 *
 * Run:  ./examples/multigrid_solver [n] [cycles]
 *       (n must be 2^k - 1; default 255)
 */

#include <cstdio>
#include <cstdlib>

#include "support/prng.hh"
#include "support/timer.hh"
#include "workloads/multigrid.hh"

int
main(int argc, char **argv)
{
    using namespace lsched;
    using namespace lsched::workloads;

    const std::size_t n =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 255;
    const unsigned cycles =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 10;

    MultigridConfig cfg;
    cfg.threaded = true; // locality-scheduled smoothing threads

    MultigridSolver solver(n, cfg);
    std::printf("multigrid_solver: %zu x %zu Poisson problem, %zu "
                "levels, threaded red-black smoother\n\n",
                n, n, solver.levelCount());

    // A deterministic random right-hand side.
    Prng prng(2718);
    Matrix &b = solver.rhs();
    for (std::size_t j = 1; j <= solver.n(); ++j)
        for (std::size_t i = 1; i <= solver.n(); ++i)
            b(i, j) = prng.nextDouble(-1.0, 1.0);

    double previous = solver.residualNorm();
    std::printf("initial residual: %.6e\n", previous);
    for (unsigned c = 1; c <= cycles; ++c) {
        WallTimer timer;
        const double r = solver.vcycle();
        std::printf("V-cycle %2u: residual %.6e  (contraction %.3f, "
                    "%.3f s)\n",
                    c, r, r / previous, timer.seconds());
        previous = r;
        if (r < 1e-12)
            break;
    }

    std::printf("\nsolution sample: u[n/2, n/2] = %.9f\n",
                solver.solution()(n / 2, n / 2));
    std::printf("a contraction factor well below 1 per cycle is the "
                "multigrid signature; the smoother inside is the "
                "paper's threaded red-black kernel\n");
    return 0;
}
